//! Deterministic mixed query/update traffic generation.
//!
//! Models the paper's weight-readjustment sessions (§1): users explore
//! around preference *anchors* with small slider jitters — which is what
//! makes GIR caching effective — while the dataset churns with
//! insertions and deletions. The generator simulates the live-record
//! set so deletes always reference records that exist at replay time.

use crate::server::{TopKRequest, Update};
use gir_geometry::vector::PointD;
use gir_rtree::Record;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Knobs for [`mixed_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Attribute dimensionality (must match the dataset).
    pub dim: usize,
    /// Distinct preference anchors.
    pub anchors: usize,
    /// Uniform jitter applied to each anchor weight per query.
    pub jitter: f64,
    /// Traffic batches to generate.
    pub batches: usize,
    /// Queries per batch.
    pub queries_per_batch: usize,
    /// Updates applied before each batch.
    pub updates_per_batch: usize,
    /// Fraction of updates that are insertions (rest are deletions).
    pub insert_fraction: f64,
    /// Result sizes drawn uniformly per query.
    pub k_choices: Vec<usize>,
    /// RNG seed; identical configs replay identical traffic.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            dim: 3,
            anchors: 8,
            jitter: 0.015,
            batches: 20,
            queries_per_batch: 512,
            updates_per_batch: 8,
            insert_fraction: 0.7,
            k_choices: vec![10],
            seed: 0x060D_5EED,
        }
    }
}

/// One unit of replay: apply `updates`, then serve `queries`.
#[derive(Debug, Clone)]
pub struct TrafficBatch {
    /// Dataset mutations preceding the queries.
    pub updates: Vec<Update>,
    /// The query batch.
    pub queries: Vec<TopKRequest>,
}

impl TrafficBatch {
    /// Queries plus updates in this batch.
    pub fn len(&self) -> usize {
        self.updates.len() + self.queries.len()
    }

    /// True when the batch carries no traffic.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty() && self.queries.is_empty()
    }
}

/// Generates `cfg.batches` batches of anchored-jitter queries with
/// interleaved insert/delete churn over `initial` (the records the
/// server was loaded with).
pub fn mixed_workload(cfg: &WorkloadConfig, initial: &[Record]) -> Vec<TrafficBatch> {
    assert!(!cfg.k_choices.is_empty(), "k_choices must not be empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = cfg.dim;

    // Anchors in [0.2, 1]^d — zero-ish weights make degenerate top-k.
    let anchors: Vec<Vec<f64>> = (0..cfg.anchors.max(1))
        .map(|_| (0..d).map(|_| rng.random_range(0.2..=1.0)).collect())
        .collect();

    // Simulated live-record set, kept in sync with replay: ids + attrs.
    let mut live: Vec<(u64, PointD)> = initial.iter().map(|r| (r.id, r.attrs.clone())).collect();
    let mut next_id = initial.iter().map(|r| r.id).max().unwrap_or(0) + 1_000_000;

    let mut batches = Vec::with_capacity(cfg.batches);
    for _ in 0..cfg.batches {
        let mut updates = Vec::with_capacity(cfg.updates_per_batch);
        for _ in 0..cfg.updates_per_batch {
            let insert = live.len() <= 1 || rng.random_bool(cfg.insert_fraction);
            if insert {
                let attrs: Vec<f64> = (0..d).map(|_| rng.random_range(0.0..1.0)).collect();
                let rec = Record::new(next_id, attrs);
                next_id += 1;
                live.push((rec.id, rec.attrs.clone()));
                updates.push(Update::Insert(rec));
            } else {
                let idx = rng.random_range(0..live.len());
                let (id, attrs) = live.swap_remove(idx);
                updates.push(Update::Delete { id, attrs });
            }
        }

        let queries = (0..cfg.queries_per_batch)
            .map(|_| {
                let a = &anchors[rng.random_range(0..anchors.len())];
                let w: Vec<f64> = a
                    .iter()
                    .map(|&v| (v + rng.random_range(-cfg.jitter..=cfg.jitter)).clamp(0.0, 1.0))
                    .collect();
                let k = cfg.k_choices[rng.random_range(0..cfg.k_choices.len())];
                TopKRequest::new(w, k)
            })
            .collect();

        batches.push(TrafficBatch { updates, queries });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_records(n: usize, d: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i as u64, vec![(i % 10) as f64 / 10.0; d]))
            .collect()
    }

    #[test]
    fn deterministic_and_sized() {
        let cfg = WorkloadConfig {
            batches: 4,
            queries_per_batch: 32,
            ..Default::default()
        };
        let recs = seed_records(100, 3);
        let a = mixed_workload(&cfg, &recs);
        let b = mixed_workload(&cfg, &recs);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.queries.len(), 32);
            assert_eq!(x.updates.len(), cfg.updates_per_batch);
            for (qx, qy) in x.queries.iter().zip(&y.queries) {
                assert_eq!(qx.weights.coords(), qy.weights.coords());
                assert_eq!(qx.k, qy.k);
            }
        }
    }

    #[test]
    fn deletes_reference_live_records_only() {
        let cfg = WorkloadConfig {
            batches: 30,
            queries_per_batch: 1,
            updates_per_batch: 10,
            insert_fraction: 0.3, // delete-heavy: stresses liveness
            ..Default::default()
        };
        let recs = seed_records(50, 3);
        let mut live: std::collections::HashSet<u64> = recs.iter().map(|r| r.id).collect();
        for batch in mixed_workload(&cfg, &recs) {
            for u in &batch.updates {
                match u {
                    Update::Insert(r) => {
                        assert!(live.insert(r.id), "duplicate insert id {}", r.id);
                    }
                    Update::Delete { id, .. } => {
                        assert!(live.remove(id), "delete of dead record {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn queries_stay_in_unit_box() {
        let cfg = WorkloadConfig {
            jitter: 0.5,
            batches: 3,
            ..Default::default()
        };
        for batch in mixed_workload(&cfg, &seed_records(20, 3)) {
            for q in &batch.queries {
                assert!(q.weights.coords().iter().all(|&w| (0.0..=1.0).contains(&w)));
            }
        }
    }
}
