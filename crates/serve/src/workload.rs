//! Deterministic mixed query/update traffic generation.
//!
//! Models the paper's weight-readjustment sessions (§1): users explore
//! around preference *anchors* with small slider jitters — which is what
//! makes GIR caching effective — while the dataset churns with
//! insertions and deletions. The generator simulates the live-record
//! set so deletes always reference records that exist at replay time.

use crate::server::{TopKRequest, Update};
use gir_geometry::vector::PointD;
use gir_rtree::Record;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Knobs for [`mixed_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Attribute dimensionality (must match the dataset).
    pub dim: usize,
    /// Distinct preference anchors.
    pub anchors: usize,
    /// Uniform jitter applied to each anchor weight per query.
    pub jitter: f64,
    /// Traffic batches to generate.
    pub batches: usize,
    /// Queries per batch.
    pub queries_per_batch: usize,
    /// Updates applied before each batch.
    pub updates_per_batch: usize,
    /// Fraction of updates that are insertions (rest are deletions).
    pub insert_fraction: f64,
    /// Fraction of insertions drawn *competitive* — attributes in
    /// `[0.7, 1)^d`, contending with the top-k — instead of uniform.
    /// Models new listings entering near the top; 0 reproduces the
    /// PR 1 traffic byte-for-byte.
    pub insert_hot_fraction: f64,
    /// Fraction of deletions that remove the *oldest live hot insert*
    /// (falling back to uniform when none is live). Models volatile
    /// competitive listings: a hot record shrinks cached regions on
    /// arrival and frees them again on departure — the churn that
    /// separates incremental repair from the sweep-and-forget baseline.
    /// 0 reproduces the PR 1 traffic byte-for-byte.
    pub delete_hot_fraction: f64,
    /// Result sizes drawn uniformly per query.
    pub k_choices: Vec<usize>,
    /// RNG seed; identical configs replay identical traffic.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            dim: 3,
            anchors: 8,
            jitter: 0.015,
            batches: 20,
            queries_per_batch: 512,
            updates_per_batch: 8,
            insert_fraction: 0.7,
            insert_hot_fraction: 0.0,
            delete_hot_fraction: 0.0,
            k_choices: vec![10],
            seed: 0x060D_5EED,
        }
    }
}

/// One unit of replay: apply `updates`, then serve `queries`.
#[derive(Debug, Clone)]
pub struct TrafficBatch {
    /// Dataset mutations preceding the queries.
    pub updates: Vec<Update>,
    /// The query batch.
    pub queries: Vec<TopKRequest>,
}

impl TrafficBatch {
    /// Queries plus updates in this batch.
    pub fn len(&self) -> usize {
        self.updates.len() + self.queries.len()
    }

    /// True when the batch carries no traffic.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty() && self.queries.is_empty()
    }
}

/// Generates `cfg.batches` batches of anchored-jitter queries with
/// interleaved insert/delete churn over `initial` (the records the
/// server was loaded with).
pub fn mixed_workload(cfg: &WorkloadConfig, initial: &[Record]) -> Vec<TrafficBatch> {
    assert!(!cfg.k_choices.is_empty(), "k_choices must not be empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let d = cfg.dim;

    // Anchors in [0.2, 1]^d — zero-ish weights make degenerate top-k.
    let anchors: Vec<Vec<f64>> = (0..cfg.anchors.max(1))
        .map(|_| (0..d).map(|_| rng.random_range(0.2..=1.0)).collect())
        .collect();

    // Simulated live-record set, kept in sync with replay: ids + attrs.
    let mut live: Vec<(u64, PointD)> = initial.iter().map(|r| (r.id, r.attrs.clone())).collect();
    let mut next_id = initial.iter().map(|r| r.id).max().unwrap_or(0) + 1_000_000;
    // Live hot inserts in arrival order; hot deletes churn the oldest.
    let mut hot_live: std::collections::VecDeque<u64> = std::collections::VecDeque::new();

    let mut batches = Vec::with_capacity(cfg.batches);
    for _ in 0..cfg.batches {
        let mut updates = Vec::with_capacity(cfg.updates_per_batch);
        for _ in 0..cfg.updates_per_batch {
            let insert = live.len() <= 1 || rng.random_bool(cfg.insert_fraction);
            if insert {
                // Guarded draws: the hot knobs at 0.0 must not consume
                // RNG state, so default configs replay the same traffic
                // as before the knobs existed.
                let hot = cfg.insert_hot_fraction > 0.0 && rng.random_bool(cfg.insert_hot_fraction);
                let lo = if hot { 0.7 } else { 0.0 };
                let attrs: Vec<f64> = (0..d).map(|_| rng.random_range(lo..1.0)).collect();
                let rec = Record::new(next_id, attrs);
                next_id += 1;
                live.push((rec.id, rec.attrs.clone()));
                if hot {
                    hot_live.push_back(rec.id);
                }
                updates.push(Update::Insert(rec));
            } else {
                let hot = cfg.delete_hot_fraction > 0.0 && rng.random_bool(cfg.delete_hot_fraction);
                let idx = match hot.then(|| hot_live.pop_front()).flatten() {
                    Some(hot_id) => live
                        .iter()
                        .position(|(id, _)| *id == hot_id)
                        .expect("hot_live tracks live records"),
                    None => rng.random_range(0..live.len()),
                };
                let (id, attrs) = live.swap_remove(idx);
                hot_live.retain(|&h| h != id);
                updates.push(Update::Delete { id, attrs });
            }
        }

        let queries = (0..cfg.queries_per_batch)
            .map(|_| {
                let a = &anchors[rng.random_range(0..anchors.len())];
                let w: Vec<f64> = a
                    .iter()
                    .map(|&v| (v + rng.random_range(-cfg.jitter..=cfg.jitter)).clamp(0.0, 1.0))
                    .collect();
                let k = cfg.k_choices[rng.random_range(0..cfg.k_choices.len())];
                TopKRequest::new(w, k)
            })
            .collect();

        batches.push(TrafficBatch { updates, queries });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_records(n: usize, d: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(i as u64, vec![(i % 10) as f64 / 10.0; d]))
            .collect()
    }

    #[test]
    fn deterministic_and_sized() {
        let cfg = WorkloadConfig {
            batches: 4,
            queries_per_batch: 32,
            ..Default::default()
        };
        let recs = seed_records(100, 3);
        let a = mixed_workload(&cfg, &recs);
        let b = mixed_workload(&cfg, &recs);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.queries.len(), 32);
            assert_eq!(x.updates.len(), cfg.updates_per_batch);
            for (qx, qy) in x.queries.iter().zip(&y.queries) {
                assert_eq!(qx.weights.coords(), qy.weights.coords());
                assert_eq!(qx.k, qy.k);
            }
        }
    }

    #[test]
    fn deletes_reference_live_records_only() {
        let cfg = WorkloadConfig {
            batches: 30,
            queries_per_batch: 1,
            updates_per_batch: 10,
            insert_fraction: 0.3, // delete-heavy: stresses liveness
            ..Default::default()
        };
        let recs = seed_records(50, 3);
        let mut live: std::collections::HashSet<u64> = recs.iter().map(|r| r.id).collect();
        for batch in mixed_workload(&cfg, &recs) {
            for u in &batch.updates {
                match u {
                    Update::Insert(r) => {
                        assert!(live.insert(r.id), "duplicate insert id {}", r.id);
                    }
                    Update::Delete { id, .. } => {
                        assert!(live.remove(id), "delete of dead record {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn hot_churn_inserts_competitive_records_and_deletes_them_fifo() {
        let cfg = WorkloadConfig {
            batches: 10,
            queries_per_batch: 1,
            updates_per_batch: 12,
            insert_fraction: 0.5,
            insert_hot_fraction: 1.0,
            delete_hot_fraction: 1.0,
            ..Default::default()
        };
        let recs = seed_records(80, 3);
        let mut hot_order: Vec<u64> = Vec::new();
        let mut fifo_hits = 0usize;
        let mut deletes = 0usize;
        for batch in mixed_workload(&cfg, &recs) {
            for u in &batch.updates {
                match u {
                    Update::Insert(r) => {
                        assert!(
                            r.attrs.coords().iter().all(|&v| v >= 0.7),
                            "hot insert below the competitive band: {:?}",
                            r.attrs
                        );
                        hot_order.push(r.id);
                    }
                    Update::Delete { id, .. } => {
                        deletes += 1;
                        if hot_order.first() == Some(id) {
                            fifo_hits += 1;
                        }
                        hot_order.retain(|h| h != id);
                    }
                }
            }
        }
        assert!(deletes > 0);
        // Full hot churn removes the oldest live hot insert whenever one
        // exists (only the warm-up deletes fall back to uniform).
        assert!(
            fifo_hits * 2 > deletes,
            "{fifo_hits} of {deletes} deletes churned the oldest hot insert"
        );
    }

    #[test]
    fn default_knobs_replay_pr1_traffic() {
        // The guarded RNG draws must leave the default stream untouched:
        // adding the knobs at 0.0 cannot change generated traffic.
        let cfg = WorkloadConfig {
            batches: 3,
            queries_per_batch: 8,
            ..Default::default()
        };
        assert_eq!(cfg.insert_hot_fraction, 0.0);
        assert_eq!(cfg.delete_hot_fraction, 0.0);
        let recs = seed_records(40, 3);
        for batch in mixed_workload(&cfg, &recs) {
            for u in &batch.updates {
                if let Update::Insert(r) = u {
                    // Uniform inserts may fall anywhere in the unit box.
                    assert!(r.attrs.coords().iter().all(|&v| (0.0..1.0).contains(&v)));
                }
            }
        }
    }

    #[test]
    fn queries_stay_in_unit_box() {
        let cfg = WorkloadConfig {
            jitter: 0.5,
            batches: 3,
            ..Default::default()
        };
        for batch in mixed_workload(&cfg, &seed_records(20, 3)) {
            for q in &batch.queries {
                assert!(q.weights.coords().iter().all(|&w| (0.0..=1.0).contains(&w)));
            }
        }
    }
}
