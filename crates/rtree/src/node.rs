//! 4 KiB page layout for R\*-tree nodes.
//!
//! ```text
//! header (8 bytes): tag u8 | dim u8 | count u16 | pad u32
//! leaf entry:       record id u64 | d × f64 attributes
//! internal entry:   child page id u64 | d × f64 lo | d × f64 hi
//! ```
//!
//! Capacities follow from the page size, e.g. `d = 4`: 102 records per
//! leaf, 56 entries per internal node — in line with the paper's 4 KByte
//! pages (§8).

use crate::mbb::Mbb;
use crate::record::Record;
use bytes::{Buf, BufMut, Bytes};
use gir_geometry::vector::PointD;
use gir_storage::{PageBuf, PageId, PAGE_SIZE};

const HEADER: usize = 8;
const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;

/// Decoded node contents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEntries {
    /// Child page ids with their MBBs.
    Internal(Vec<(Mbb, PageId)>),
    /// Data records.
    Leaf(Vec<Record>),
}

/// A decoded R\*-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Attribute dimensionality.
    pub dim: usize,
    /// Entries (leaf records or internal children).
    pub entries: NodeEntries,
}

impl Node {
    /// Creates an empty leaf.
    pub fn leaf(dim: usize) -> Node {
        Node {
            dim,
            entries: NodeEntries::Leaf(Vec::new()),
        }
    }

    /// Creates an empty internal node.
    pub fn internal(dim: usize) -> Node {
        Node {
            dim,
            entries: NodeEntries::Internal(Vec::new()),
        }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, NodeEntries::Leaf(_))
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        match &self.entries {
            NodeEntries::Internal(v) => v.len(),
            NodeEntries::Leaf(v) => v.len(),
        }
    }

    /// True when the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// MBB of all entries.
    pub fn mbb(&self) -> Mbb {
        match &self.entries {
            NodeEntries::Internal(v) => Mbb::of_mbbs(v.iter().map(|(m, _)| m), self.dim),
            NodeEntries::Leaf(v) => Mbb::of_points(v.iter().map(|r| &r.attrs), self.dim),
        }
    }

    /// Maximum records per leaf for dimensionality `d`.
    pub fn leaf_capacity(d: usize) -> usize {
        (PAGE_SIZE - HEADER) / (8 + 8 * d)
    }

    /// Maximum entries per internal node for dimensionality `d`.
    pub fn internal_capacity(d: usize) -> usize {
        (PAGE_SIZE - HEADER) / (8 + 16 * d)
    }

    /// Minimum fill (40% of capacity, R\* recommendation), at least 2.
    pub fn min_fill(capacity: usize) -> usize {
        (capacity * 2 / 5).max(2)
    }

    /// Capacity of this node's kind.
    pub fn capacity(&self) -> usize {
        if self.is_leaf() {
            Self::leaf_capacity(self.dim)
        } else {
            Self::internal_capacity(self.dim)
        }
    }

    /// Serializes into a page image.
    pub fn encode(&self) -> PageBuf {
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        match &self.entries {
            NodeEntries::Leaf(records) => {
                assert!(
                    records.len() <= Self::leaf_capacity(self.dim),
                    "leaf overflow"
                );
                buf.put_u8(TAG_LEAF);
                buf.put_u8(self.dim as u8);
                buf.put_u16(records.len() as u16);
                buf.put_u32(0);
                for r in records {
                    debug_assert_eq!(r.dim(), self.dim);
                    buf.put_u64(r.id);
                    for &c in r.attrs.coords() {
                        buf.put_f64(c);
                    }
                }
            }
            NodeEntries::Internal(children) => {
                assert!(
                    children.len() <= Self::internal_capacity(self.dim),
                    "internal overflow"
                );
                buf.put_u8(TAG_INTERNAL);
                buf.put_u8(self.dim as u8);
                buf.put_u16(children.len() as u16);
                buf.put_u32(0);
                for (mbb, child) in children {
                    buf.put_u64(*child);
                    for &c in mbb.lo.coords() {
                        buf.put_f64(c);
                    }
                    for &c in mbb.hi.coords() {
                        buf.put_f64(c);
                    }
                }
            }
        }
        PageBuf::from_slice(&buf)
    }

    /// Deserializes from a page image.
    pub fn decode(page: &Bytes) -> Node {
        let mut buf = &page[..];
        let tag = buf.get_u8();
        let dim = buf.get_u8() as usize;
        let count = buf.get_u16() as usize;
        let _pad = buf.get_u32();
        match tag {
            TAG_LEAF => {
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = buf.get_u64();
                    let coords: Vec<f64> = (0..dim).map(|_| buf.get_f64()).collect();
                    records.push(Record::new(id, coords));
                }
                Node {
                    dim,
                    entries: NodeEntries::Leaf(records),
                }
            }
            TAG_INTERNAL => {
                let mut children = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = buf.get_u64();
                    let lo: Vec<f64> = (0..dim).map(|_| buf.get_f64()).collect();
                    let hi: Vec<f64> = (0..dim).map(|_| buf.get_f64()).collect();
                    children.push((
                        Mbb {
                            lo: PointD::from(lo),
                            hi: PointD::from(hi),
                        },
                        child,
                    ));
                }
                Node {
                    dim,
                    entries: NodeEntries::Internal(children),
                }
            }
            other => panic!("corrupt page: unknown node tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_page_budget() {
        assert_eq!(Node::leaf_capacity(4), (4096 - 8) / 40);
        assert_eq!(Node::internal_capacity(4), (4096 - 8) / 72);
        // Sanity for the full experimental range.
        for d in 2..=8 {
            assert!(Node::leaf_capacity(d) >= Node::min_fill(Node::leaf_capacity(d)) * 2);
            assert!(Node::internal_capacity(d) >= 10);
        }
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = Node::leaf(3);
        if let NodeEntries::Leaf(v) = &mut n.entries {
            for i in 0..10 {
                v.push(Record::new(i, vec![i as f64 / 10.0, 0.5, 0.25]));
            }
        }
        let decoded = Node::decode(&n.encode().freeze());
        assert_eq!(n, decoded);
        assert!(decoded.is_leaf());
        assert_eq!(decoded.len(), 10);
    }

    #[test]
    fn internal_roundtrip() {
        let mut n = Node::internal(2);
        if let NodeEntries::Internal(v) = &mut n.entries {
            for i in 0..5u64 {
                let lo = PointD::new(vec![i as f64 / 10.0, 0.0]);
                let hi = PointD::new(vec![i as f64 / 10.0 + 0.05, 1.0]);
                v.push((Mbb { lo, hi }, i + 100));
            }
        }
        let decoded = Node::decode(&n.encode().freeze());
        assert_eq!(n, decoded);
        assert!(!decoded.is_leaf());
    }

    #[test]
    fn mbb_covers_entries() {
        let mut n = Node::leaf(2);
        if let NodeEntries::Leaf(v) = &mut n.entries {
            v.push(Record::new(0, vec![0.1, 0.8]));
            v.push(Record::new(1, vec![0.6, 0.2]));
        }
        let m = n.mbb();
        assert_eq!(m.lo.coords(), &[0.1, 0.2]);
        assert_eq!(m.hi.coords(), &[0.6, 0.8]);
    }

    #[test]
    fn full_leaf_fits_in_page() {
        let d = 6;
        let cap = Node::leaf_capacity(d);
        let mut n = Node::leaf(d);
        if let NodeEntries::Leaf(v) = &mut n.entries {
            for i in 0..cap as u64 {
                v.push(Record::new(i, vec![0.5; d]));
            }
        }
        let page = n.encode(); // must not panic
        let back = Node::decode(&page.freeze());
        assert_eq!(back.len(), cap);
    }

    #[test]
    #[should_panic(expected = "leaf overflow")]
    fn overfull_leaf_panics() {
        let d = 2;
        let cap = Node::leaf_capacity(d);
        let mut n = Node::leaf(d);
        if let NodeEntries::Leaf(v) = &mut n.entries {
            for i in 0..=cap as u64 {
                v.push(Record::new(i, vec![0.5; d]));
            }
        }
        let _ = n.encode();
    }
}
