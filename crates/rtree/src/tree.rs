//! The R\*-tree proper: dynamic insertion (ChooseSubtree, R\* split,
//! forced reinsert) and STR bulk loading.
//!
//! Bulk loading exists because the experiments build trees over millions
//! of records (Table 2); sort-tile-recursive produces well-clustered
//! trees in `O(n log n)` and is the standard substitute for repeated
//! insertion at that scale. Dynamic insertion implements the full R\*
//! algorithm [Beckmann et al. 1990] and is cross-checked against bulk
//! loading in tests.

use crate::mbb::Mbb;
use crate::node::{Node, NodeEntries};
use crate::record::Record;
use gir_geometry::vector::PointD;
use gir_storage::{PageId, PageStore, StorageError};
use std::sync::Arc;

/// Fraction of entries removed by forced reinsert (R\* recommends 30%).
const REINSERT_FRACTION: f64 = 0.3;

/// Errors from tree operations.
#[derive(Debug)]
pub enum RTreeError {
    /// Underlying page store failure.
    Storage(StorageError),
    /// Record dimensionality differs from the tree's.
    DimensionMismatch { expected: usize, got: usize },
    /// Bulk load of an empty dataset.
    EmptyDataset,
}

impl std::fmt::Display for RTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RTreeError::Storage(e) => write!(f, "storage: {e}"),
            RTreeError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: tree {expected}, record {got}")
            }
            RTreeError::EmptyDataset => write!(f, "cannot bulk-load an empty dataset"),
        }
    }
}

impl std::error::Error for RTreeError {}

impl From<StorageError> for RTreeError {
    fn from(e: StorageError) -> Self {
        RTreeError::Storage(e)
    }
}

/// An entry being (re)inserted at some level.
#[derive(Debug, Clone)]
enum Entry {
    Record(Record),
    Child(Mbb, PageId),
}

impl Entry {
    fn mbb(&self) -> Mbb {
        match self {
            Entry::Record(r) => Mbb::point(&r.attrs),
            Entry::Child(m, _) => m.clone(),
        }
    }
}

/// An R\*-tree over a shared page store.
pub struct RTree {
    store: Arc<dyn PageStore>,
    root: PageId,
    dim: usize,
    /// Leaf level is 0; the root sits at `height - 1`.
    height: u32,
    len: u64,
}

impl RTree {
    /// Creates an empty tree of dimensionality `dim`.
    pub fn new(store: Arc<dyn PageStore>, dim: usize) -> Result<RTree, RTreeError> {
        assert!(
            (1..=16).contains(&dim),
            "supported dimensionality is 1..=16"
        );
        let root = store.allocate();
        store.write_page(root, Node::leaf(dim).encode())?;
        Ok(RTree {
            store,
            root,
            dim,
            height: 1,
            len: 0,
        })
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Attribute dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree height (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id.
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// The shared page store (for I/O statistics).
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Reads and decodes a node, counting one logical page fetch.
    pub fn read_node(&self, id: PageId) -> Result<Node, RTreeError> {
        Ok(Node::decode(&self.store.read_page(id)?))
    }

    /// MBB of the whole tree (one page fetch).
    pub fn root_mbb(&self) -> Result<Mbb, RTreeError> {
        Ok(self.read_node(self.root)?.mbb())
    }

    // ------------------------------------------------------------------
    // Dynamic insertion (R*)
    // ------------------------------------------------------------------

    /// Inserts one record.
    pub fn insert(&mut self, rec: Record) -> Result<(), RTreeError> {
        if rec.dim() != self.dim {
            return Err(RTreeError::DimensionMismatch {
                expected: self.dim,
                got: rec.dim(),
            });
        }
        self.drain_pending(vec![(Entry::Record(rec), 0)])?;
        self.len += 1;
        Ok(())
    }

    /// Inserts/reinserts a batch of entries (records or orphaned subtrees)
    /// at their levels, handling overflow treatment and root splits.
    fn drain_pending(&mut self, mut pending: Vec<(Entry, u32)>) -> Result<(), RTreeError> {
        // Forced reinsert fires at most once per level per logical insert.
        let mut reinserted_levels: Vec<bool> = vec![false; self.height as usize + 1];
        while let Some((entry, level)) = pending.pop() {
            reinserted_levels.resize(self.height as usize + 1, false);
            let root = self.root;
            let root_level = self.height - 1;
            let (_, split) = self.insert_at(
                root,
                root_level,
                entry,
                level,
                &mut reinserted_levels,
                &mut pending,
            )?;
            if let Some((sib_mbb, sib_page)) = split {
                // Root split: grow the tree by one level.
                let old_root_mbb = self.read_node(root)?.mbb();
                let new_root = self.store.allocate();
                let mut node = Node::internal(self.dim);
                if let NodeEntries::Internal(v) = &mut node.entries {
                    v.push((old_root_mbb, root));
                    v.push((sib_mbb, sib_page));
                }
                self.store.write_page(new_root, node.encode())?;
                self.root = new_root;
                self.height += 1;
                reinserted_levels.resize(self.height as usize + 1, false);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deletion (condense-tree with reinsertion)
    // ------------------------------------------------------------------

    /// Deletes the record with the given id and attribute point. Returns
    /// `false` when no such record exists. Underfull nodes are dissolved
    /// and their entries reinserted (Guttman's CondenseTree); a root left
    /// with a single child is collapsed. Orphaned pages are not recycled
    /// (the store has no free list).
    pub fn delete(&mut self, id: u64, attrs: &PointD) -> Result<bool, RTreeError> {
        if attrs.dim() != self.dim {
            return Err(RTreeError::DimensionMismatch {
                expected: self.dim,
                got: attrs.dim(),
            });
        }
        let root = self.root;
        let root_level = self.height - 1;
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        let (found, _) = self.delete_at(root, root_level, id, attrs, &mut orphans)?;
        if !found {
            debug_assert!(orphans.is_empty());
            return Ok(false);
        }
        self.len -= 1;
        self.drain_pending(orphans)?;
        // Collapse a single-child internal root.
        loop {
            let node = self.read_node(self.root)?;
            match &node.entries {
                NodeEntries::Internal(v) if v.len() == 1 => {
                    self.root = v[0].1;
                    self.height -= 1;
                }
                _ => break,
            }
        }
        Ok(true)
    }

    /// Recursive delete. Returns `(found, new_mbb)`; `new_mbb == None`
    /// means this node underflowed: its surviving entries were pushed to
    /// `orphans` and the caller must drop its entry for this child.
    fn delete_at(
        &mut self,
        page: PageId,
        page_level: u32,
        id: u64,
        attrs: &PointD,
        orphans: &mut Vec<(Entry, u32)>,
    ) -> Result<(bool, Option<Mbb>), RTreeError> {
        let mut node = self.read_node(page)?;
        let min = Node::min_fill(node.capacity());
        let is_root = page == self.root;
        match &mut node.entries {
            NodeEntries::Leaf(recs) => {
                let Some(pos) = recs.iter().position(|r| r.id == id && r.attrs == *attrs) else {
                    return Ok((false, None));
                };
                recs.remove(pos);
                if is_root || node.len() >= min {
                    let mbb = node.mbb();
                    self.store.write_page(page, node.encode())?;
                    Ok((true, Some(mbb)))
                } else {
                    let NodeEntries::Leaf(recs) = node.entries else {
                        unreachable!()
                    };
                    orphans.extend(recs.into_iter().map(|r| (Entry::Record(r), 0)));
                    Ok((true, None))
                }
            }
            NodeEntries::Internal(children) => {
                // Candidate subtrees: those whose MBB covers the point.
                let candidates: Vec<(usize, PageId)> = children
                    .iter()
                    .enumerate()
                    .filter(|(_, (m, _))| m.contains_point(attrs))
                    .map(|(i, (_, c))| (i, *c))
                    .collect();
                let mut hit: Option<(usize, Option<Mbb>)> = None;
                for (idx, child) in candidates {
                    let (found, outcome) =
                        self.delete_at(child, page_level - 1, id, attrs, orphans)?;
                    if found {
                        hit = Some((idx, outcome));
                        break;
                    }
                }
                let Some((idx, outcome)) = hit else {
                    return Ok((false, None));
                };
                let NodeEntries::Internal(children) = &mut node.entries else {
                    unreachable!()
                };
                match outcome {
                    Some(mbb) => children[idx].0 = mbb,
                    None => {
                        children.remove(idx);
                    }
                }
                if is_root || node.len() >= min {
                    let mbb = node.mbb();
                    self.store.write_page(page, node.encode())?;
                    Ok((true, Some(mbb)))
                } else {
                    let NodeEntries::Internal(children) = node.entries else {
                        unreachable!()
                    };
                    // Surviving subtrees live at page_level - 1; a new
                    // holder must sit at page_level.
                    orphans.extend(
                        children
                            .into_iter()
                            .map(|(m, c)| (Entry::Child(m, c), page_level)),
                    );
                    Ok((true, None))
                }
            }
        }
    }

    /// Recursive insert of `entry` (which lives at `target_level`) into the
    /// subtree rooted at `page` (which sits at `page_level`). Returns the
    /// node's updated MBB plus a sibling entry when the node split.
    #[allow(clippy::type_complexity)]
    fn insert_at(
        &mut self,
        page: PageId,
        page_level: u32,
        entry: Entry,
        target_level: u32,
        reinserted: &mut Vec<bool>,
        pending: &mut Vec<(Entry, u32)>,
    ) -> Result<(Mbb, Option<(Mbb, PageId)>), RTreeError> {
        let mut node = self.read_node(page)?;
        if page_level == target_level {
            match (&mut node.entries, entry) {
                (NodeEntries::Leaf(v), Entry::Record(r)) => v.push(r),
                (NodeEntries::Internal(v), Entry::Child(m, p)) => v.push((m, p)),
                _ => unreachable!("entry kind matches level by construction"),
            }
        } else {
            let NodeEntries::Internal(children) = &mut node.entries else {
                unreachable!("non-leaf levels are internal");
            };
            let idx = choose_subtree(children, &entry.mbb(), page_level == target_level + 1);
            let child_page = children[idx].1;
            let (child_mbb, split) = self.insert_at(
                child_page,
                page_level - 1,
                entry,
                target_level,
                reinserted,
                pending,
            )?;
            children[idx].0 = child_mbb;
            if let Some((sib_mbb, sib_page)) = split {
                children.push((sib_mbb, sib_page));
            }
        }

        if node.len() <= node.capacity() {
            let mbb = node.mbb();
            self.store.write_page(page, node.encode())?;
            return Ok((mbb, None));
        }

        // Overflow treatment: forced reinsert once per level (except the
        // root), then split.
        let is_root = page == self.root;
        let lvl = page_level as usize;
        if !is_root && !reinserted.get(lvl).copied().unwrap_or(false) {
            if lvl < reinserted.len() {
                reinserted[lvl] = true;
            }
            let removed = remove_for_reinsert(&mut node);
            let mbb = node.mbb();
            self.store.write_page(page, node.encode())?;
            for e in removed {
                pending.push((e, page_level));
            }
            return Ok((mbb, None));
        }

        let (keep, sibling) = split_node(&node);
        let keep_mbb = keep.mbb();
        let sib_mbb = sibling.mbb();
        let sib_page = self.store.allocate();
        self.store.write_page(page, keep.encode())?;
        self.store.write_page(sib_page, sibling.encode())?;
        Ok((keep_mbb, Some((sib_mbb, sib_page))))
    }

    // ------------------------------------------------------------------
    // Bulk loading (STR)
    // ------------------------------------------------------------------

    /// Bulk-loads a dataset with sort-tile-recursive packing.
    pub fn bulk_load(store: Arc<dyn PageStore>, records: &[Record]) -> Result<RTree, RTreeError> {
        let Some(first) = records.first() else {
            return Err(RTreeError::EmptyDataset);
        };
        let dim = first.dim();
        if let Some(bad) = records.iter().find(|r| r.dim() != dim) {
            return Err(RTreeError::DimensionMismatch {
                expected: dim,
                got: bad.dim(),
            });
        }

        // Tile records into leaves.
        let leaf_cap = Node::leaf_capacity(dim);
        let mut recs: Vec<&Record> = records.iter().collect();
        let mut chunks: Vec<Vec<&Record>> = Vec::new();
        str_tile(&mut recs, dim, 0, leaf_cap, &mut chunks, |r, ax| {
            r.attrs[ax]
        });

        let mut level: Vec<(Mbb, PageId)> = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            let mut node = Node::leaf(dim);
            if let NodeEntries::Leaf(v) = &mut node.entries {
                v.extend(chunk.iter().map(|r| (*r).clone()));
            }
            let page = store.allocate();
            let mbb = node.mbb();
            store.write_page(page, node.encode())?;
            level.push((mbb, page));
        }

        // Build internal levels bottom-up.
        let internal_cap = Node::internal_capacity(dim);
        let mut height = 1u32;
        while level.len() > 1 {
            let centers: Vec<PointD> = level.iter().map(|(m, _)| m.center()).collect();
            // Tile by MBB centers; borrow the precomputed centers by index.
            let mut idx: Vec<usize> = (0..level.len()).collect();
            let mut idx_groups: Vec<Vec<usize>> = Vec::new();
            str_tile(&mut idx, dim, 0, internal_cap, &mut idx_groups, |&i, ax| {
                centers[i][ax]
            });

            let mut next: Vec<(Mbb, PageId)> = Vec::with_capacity(idx_groups.len());
            for g in idx_groups {
                let mut node = Node::internal(dim);
                if let NodeEntries::Internal(v) = &mut node.entries {
                    v.extend(g.into_iter().map(|i| level[i].clone()));
                }
                let page = store.allocate();
                let mbb = node.mbb();
                store.write_page(page, node.encode())?;
                next.push((mbb, page));
            }
            level = next;
            height += 1;
        }

        let root = level[0].1;
        Ok(RTree {
            store,
            root,
            dim,
            height,
            len: records.len() as u64,
        })
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Returns all records inside the closed box `[lo, hi]`.
    pub fn window_query(&self, window: &Mbb) -> Result<Vec<Record>, RTreeError> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            match self.read_node(page)?.entries {
                NodeEntries::Internal(children) => {
                    for (mbb, child) in children {
                        if mbb.intersects(window) {
                            stack.push(child);
                        }
                    }
                }
                NodeEntries::Leaf(records) => {
                    out.extend(
                        records
                            .into_iter()
                            .filter(|r| window.contains_point(&r.attrs)),
                    );
                }
            }
        }
        Ok(out)
    }

    /// Full scan via the index (test helper / verification).
    pub fn scan_all(&self) -> Result<Vec<Record>, RTreeError> {
        let d = self.dim;
        self.window_query(&Mbb {
            lo: PointD::splat(d, f64::NEG_INFINITY),
            hi: PointD::splat(d, f64::INFINITY),
        })
    }
}

/// R\* ChooseSubtree: minimal overlap enlargement when the children are
/// leaves, minimal area enlargement otherwise; ties broken by area.
fn choose_subtree(children: &[(Mbb, PageId)], entry: &Mbb, children_are_target: bool) -> usize {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, (mbb, _)) in children.iter().enumerate() {
        let enlarged = mbb.union(entry);
        let overlap_delta = if children_are_target {
            // Overlap enlargement against sibling MBBs.
            let mut before = 0.0;
            let mut after = 0.0;
            for (j, (other, _)) in children.iter().enumerate() {
                if i != j {
                    before += mbb.overlap(other);
                    after += enlarged.overlap(other);
                }
            }
            after - before
        } else {
            0.0
        };
        let area_delta = enlarged.area() - mbb.area();
        let key = (overlap_delta, area_delta, mbb.area());
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// Removes the `REINSERT_FRACTION` of entries whose centers are farthest
/// from the node MBB center (R\* forced reinsert, "close reinsert" keeps
/// the nearest entries in place).
fn remove_for_reinsert(node: &mut Node) -> Vec<Entry> {
    let center = node.mbb().center();
    let p = ((node.len() as f64 * REINSERT_FRACTION).ceil() as usize).max(1);
    match &mut node.entries {
        NodeEntries::Leaf(v) => {
            v.sort_by(|a, b| {
                let da = a.attrs.dist_sq(&center);
                let db = b.attrs.dist_sq(&center);
                da.partial_cmp(&db).expect("non-NaN")
            });
            v.split_off(v.len() - p)
                .into_iter()
                .map(Entry::Record)
                .collect()
        }
        NodeEntries::Internal(v) => {
            v.sort_by(|a, b| {
                let da = a.0.center().dist_sq(&center);
                let db = b.0.center().dist_sq(&center);
                da.partial_cmp(&db).expect("non-NaN")
            });
            v.split_off(v.len() - p)
                .into_iter()
                .map(|(m, pid)| Entry::Child(m, pid))
                .collect()
        }
    }
}

/// R\* split: choose the axis minimizing total margin over all allowed
/// distributions, then the distribution minimizing overlap (ties: area).
fn split_node(node: &Node) -> (Node, Node) {
    let dim = node.dim;
    let (mbbs, cap): (Vec<Mbb>, usize) = match &node.entries {
        NodeEntries::Leaf(v) => (
            v.iter().map(|r| Mbb::point(&r.attrs)).collect(),
            Node::leaf_capacity(dim),
        ),
        NodeEntries::Internal(v) => (
            v.iter().map(|(m, _)| m.clone()).collect(),
            Node::internal_capacity(dim),
        ),
    };
    let n = mbbs.len();
    let min_fill = Node::min_fill(cap);
    debug_assert!(n > cap, "split called on non-overflowing node");

    // For each axis, consider entries sorted by lo and by hi.
    let mut best_axis = 0usize;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_orders: Option<[Vec<usize>; 2]> = None;
    for axis in 0..dim {
        let mut by_lo: Vec<usize> = (0..n).collect();
        by_lo.sort_by(|&a, &b| {
            mbbs[a].lo[axis]
                .partial_cmp(&mbbs[b].lo[axis])
                .expect("non-NaN")
        });
        let mut by_hi: Vec<usize> = (0..n).collect();
        by_hi.sort_by(|&a, &b| {
            mbbs[a].hi[axis]
                .partial_cmp(&mbbs[b].hi[axis])
                .expect("non-NaN")
        });
        let mut margin_sum = 0.0;
        for order in [&by_lo, &by_hi] {
            for k in min_fill..=(n - min_fill) {
                let g1 = Mbb::of_mbbs(order[..k].iter().map(|&i| &mbbs[i]), dim);
                let g2 = Mbb::of_mbbs(order[k..].iter().map(|&i| &mbbs[i]), dim);
                margin_sum += g1.margin() + g2.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
            best_orders = Some([by_lo, by_hi]);
        }
    }
    let _ = best_axis;
    let orders = best_orders.expect("dim >= 1");

    // Pick the distribution with minimal overlap, tie-break on area.
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    let mut best_split: Option<(Vec<usize>, Vec<usize>)> = None;
    for order in &orders {
        for k in min_fill..=(n - min_fill) {
            let g1 = Mbb::of_mbbs(order[..k].iter().map(|&i| &mbbs[i]), dim);
            let g2 = Mbb::of_mbbs(order[k..].iter().map(|&i| &mbbs[i]), dim);
            let key = (g1.overlap(&g2), g1.area() + g2.area());
            if key < best_key {
                best_key = key;
                best_split = Some((order[..k].to_vec(), order[k..].to_vec()));
            }
        }
    }
    let (left_idx, right_idx) = best_split.expect("at least one distribution");

    let pick = |idx: &[usize]| -> Node {
        let mut out = Node {
            dim,
            entries: match &node.entries {
                NodeEntries::Leaf(_) => NodeEntries::Leaf(Vec::with_capacity(idx.len())),
                NodeEntries::Internal(_) => NodeEntries::Internal(Vec::with_capacity(idx.len())),
            },
        };
        match (&node.entries, &mut out.entries) {
            (NodeEntries::Leaf(src), NodeEntries::Leaf(dst)) => {
                dst.extend(idx.iter().map(|&i| src[i].clone()));
            }
            (NodeEntries::Internal(src), NodeEntries::Internal(dst)) => {
                dst.extend(idx.iter().map(|&i| src[i].clone()));
            }
            _ => unreachable!(),
        }
        out
    };
    (pick(&left_idx), pick(&right_idx))
}

/// Sort-tile-recursive partitioning: sorts `items` by the `dim`-th
/// coordinate of their key point, slices into slabs, and recurses on the
/// next coordinate; at the last coordinate it emits chunks of ≤ `cap`.
fn str_tile<T: Copy>(
    items: &mut [T],
    d: usize,
    axis: usize,
    cap: usize,
    out: &mut Vec<Vec<T>>,
    key: impl Fn(&T, usize) -> f64 + Copy,
) {
    if items.len() <= cap {
        if !items.is_empty() {
            out.push(items.to_vec());
        }
        return;
    }
    items.sort_by(|a, b| {
        key(a, axis)
            .partial_cmp(&key(b, axis))
            .expect("non-NaN coordinates")
    });
    if axis + 1 == d {
        for chunk in items.chunks(cap) {
            out.push(chunk.to_vec());
        }
        return;
    }
    let pages = items.len().div_ceil(cap);
    let remaining = (d - axis) as f64;
    let slabs = (pages as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = items.len().div_ceil(slabs.max(1));
    let mut i = 0;
    while i < items.len() {
        let end = (i + slab_size).min(items.len());
        let len = items.len();
        let _ = len;
        str_tile(&mut items[i..end], d, axis + 1, cap, out, key);
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gir_storage::{MemPageStore, PAGE_SIZE};

    fn store() -> Arc<dyn PageStore> {
        Arc::new(MemPageStore::new(PAGE_SIZE))
    }

    fn pseudo_records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Record::new(i as u64, (0..d).map(|_| next()).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn insert_and_scan_small() {
        let mut tree = RTree::new(store(), 2).unwrap();
        let recs = pseudo_records(50, 2, 1);
        for r in &recs {
            tree.insert(r.clone()).unwrap();
        }
        assert_eq!(tree.len(), 50);
        let mut all = tree.scan_all().unwrap();
        all.sort_by_key(|r| r.id);
        assert_eq!(all, recs);
    }

    #[test]
    fn insert_enough_to_split_leaves_and_root() {
        let d = 4;
        let cap = Node::leaf_capacity(d);
        let n = cap * 8; // forces splits and a root grow
        let mut tree = RTree::new(store(), d).unwrap();
        let recs = pseudo_records(n, d, 2);
        for r in &recs {
            tree.insert(r.clone()).unwrap();
        }
        assert!(tree.height() >= 2, "height {}", tree.height());
        let mut all = tree.scan_all().unwrap();
        all.sort_by_key(|r| r.id);
        assert_eq!(all.len(), n);
        assert_eq!(all, recs);
    }

    #[test]
    fn bulk_load_roundtrip() {
        let recs = pseudo_records(5000, 3, 3);
        let tree = RTree::bulk_load(store(), &recs).unwrap();
        assert_eq!(tree.len(), 5000);
        let mut all = tree.scan_all().unwrap();
        all.sort_by_key(|r| r.id);
        assert_eq!(all, recs);
        assert!(tree.height() >= 2);
    }

    #[test]
    fn bulk_load_empty_errors() {
        assert!(matches!(
            RTree::bulk_load(store(), &[]),
            Err(RTreeError::EmptyDataset)
        ));
    }

    #[test]
    fn window_query_matches_filter() {
        let recs = pseudo_records(2000, 2, 4);
        let tree = RTree::bulk_load(store(), &recs).unwrap();
        let window = Mbb {
            lo: PointD::new(vec![0.25, 0.25]),
            hi: PointD::new(vec![0.6, 0.75]),
        };
        let mut got = tree.window_query(&window).unwrap();
        got.sort_by_key(|r| r.id);
        let mut expect: Vec<Record> = recs
            .iter()
            .filter(|r| window.contains_point(&r.attrs))
            .cloned()
            .collect();
        expect.sort_by_key(|r| r.id);
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }

    #[test]
    fn window_query_dynamic_tree_matches_filter() {
        let recs = pseudo_records(600, 3, 5);
        let mut tree = RTree::new(store(), 3).unwrap();
        for r in &recs {
            tree.insert(r.clone()).unwrap();
        }
        let window = Mbb {
            lo: PointD::new(vec![0.1, 0.2, 0.0]),
            hi: PointD::new(vec![0.9, 0.7, 0.5]),
        };
        let mut got = tree.window_query(&window).unwrap();
        got.sort_by_key(|r| r.id);
        let mut expect: Vec<Record> = recs
            .iter()
            .filter(|r| window.contains_point(&r.attrs))
            .cloned()
            .collect();
        expect.sort_by_key(|r| r.id);
        assert_eq!(got, expect);
    }

    #[test]
    fn node_mbbs_cover_children() {
        // Structural invariant: every internal entry's MBB covers the MBB
        // of the child it points to.
        let recs = pseudo_records(3000, 2, 6);
        let tree = RTree::bulk_load(store(), &recs).unwrap();
        let mut stack = vec![tree.root_page()];
        while let Some(page) = stack.pop() {
            if let NodeEntries::Internal(children) = tree.read_node(page).unwrap().entries {
                for (mbb, child) in children {
                    let child_mbb = tree.read_node(child).unwrap().mbb();
                    assert!(
                        mbb.contains_mbb(&child_mbb),
                        "entry MBB does not cover child"
                    );
                    stack.push(child);
                }
            }
        }
    }

    #[test]
    fn dynamic_tree_mbbs_cover_children() {
        let recs = pseudo_records(800, 2, 7);
        let mut tree = RTree::new(store(), 2).unwrap();
        for r in &recs {
            tree.insert(r.clone()).unwrap();
        }
        let mut stack = vec![tree.root_page()];
        while let Some(page) = stack.pop() {
            if let NodeEntries::Internal(children) = tree.read_node(page).unwrap().entries {
                for (mbb, child) in children {
                    let child_mbb = tree.read_node(child).unwrap().mbb();
                    assert!(mbb.contains_mbb(&child_mbb));
                    stack.push(child);
                }
            }
        }
    }

    #[test]
    fn io_counted_on_reads() {
        let recs = pseudo_records(1000, 2, 8);
        let tree = RTree::bulk_load(store(), &recs).unwrap();
        tree.store().reset_stats();
        tree.scan_all().unwrap();
        let stats = tree.store().stats();
        assert!(stats.reads > 0);
        assert_eq!(stats.writes, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut tree = RTree::new(store(), 3).unwrap();
        assert!(matches!(
            tree.insert(Record::new(0, vec![0.5, 0.5])),
            Err(RTreeError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn delete_roundtrip_scan_matches() {
        let recs = pseudo_records(1200, 3, 21);
        let mut tree = RTree::bulk_load(store(), &recs).unwrap();
        // Delete every third record.
        for r in recs.iter().step_by(3) {
            assert!(
                tree.delete(r.id, &r.attrs).unwrap(),
                "record {} missing",
                r.id
            );
        }
        let expect: Vec<Record> = recs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, r)| r.clone())
            .collect();
        assert_eq!(tree.len() as usize, expect.len());
        let mut all = tree.scan_all().unwrap();
        all.sort_by_key(|r| r.id);
        assert_eq!(all, expect);
    }

    #[test]
    fn delete_nonexistent_returns_false() {
        let recs = pseudo_records(100, 2, 22);
        let mut tree = RTree::bulk_load(store(), &recs).unwrap();
        assert!(!tree.delete(9999, &PointD::new(vec![0.5, 0.5])).unwrap());
        assert_eq!(tree.len(), 100);
        // Right point, wrong id.
        assert!(!tree.delete(9999, &recs[0].attrs).unwrap());
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let recs = pseudo_records(400, 2, 23);
        let mut tree = RTree::bulk_load(store(), &recs).unwrap();
        for r in &recs {
            assert!(tree.delete(r.id, &r.attrs).unwrap());
        }
        assert_eq!(tree.len(), 0);
        assert!(tree.scan_all().unwrap().is_empty());
        for r in &recs {
            tree.insert(r.clone()).unwrap();
        }
        let mut all = tree.scan_all().unwrap();
        all.sort_by_key(|r| r.id);
        assert_eq!(all, recs);
    }

    #[test]
    fn delete_preserves_structural_invariants() {
        let recs = pseudo_records(1500, 2, 24);
        let mut tree = RTree::bulk_load(store(), &recs).unwrap();
        for r in recs.iter().take(900) {
            tree.delete(r.id, &r.attrs).unwrap();
        }
        // MBB containment everywhere; no non-root node underfull.
        let mut stack = vec![(tree.root_page(), true)];
        while let Some((page, is_root)) = stack.pop() {
            let node = tree.read_node(page).unwrap();
            if !is_root {
                assert!(node.len() >= Node::min_fill(node.capacity()));
            }
            if let NodeEntries::Internal(children) = node.entries {
                assert!(is_root || children.len() >= 2);
                for (mbb, child) in children {
                    let child_mbb = tree.read_node(child).unwrap().mbb();
                    assert!(mbb.contains_mbb(&child_mbb));
                    stack.push((child, false));
                }
            }
        }
        // Height collapsed or stayed consistent; remaining records intact.
        let mut all = tree.scan_all().unwrap();
        all.sort_by_key(|r| r.id);
        let expect: Vec<Record> = recs[900..].to_vec();
        let mut expect = expect;
        expect.sort_by_key(|r| r.id);
        assert_eq!(all, expect);
    }

    #[test]
    fn interleaved_insert_delete_fuzz() {
        let recs = pseudo_records(600, 3, 25);
        let mut tree = RTree::new(store(), 3).unwrap();
        let mut live: Vec<Record> = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            tree.insert(r.clone()).unwrap();
            live.push(r.clone());
            if i % 3 == 2 {
                // Remove a pseudo-random live record.
                let idx = (i * 2654435761) % live.len();
                let victim = live.swap_remove(idx);
                assert!(tree.delete(victim.id, &victim.attrs).unwrap());
            }
        }
        let mut all = tree.scan_all().unwrap();
        all.sort_by_key(|r| r.id);
        live.sort_by_key(|r| r.id);
        assert_eq!(all, live);
    }

    #[test]
    fn min_fill_respected_after_splits() {
        let d = 2;
        let recs = pseudo_records(Node::leaf_capacity(d) * 20, d, 9);
        let mut tree = RTree::new(store(), d).unwrap();
        for r in &recs {
            tree.insert(r.clone()).unwrap();
        }
        // Every non-root node holds at least min_fill entries.
        let mut stack = vec![(tree.root_page(), true)];
        while let Some((page, is_root)) = stack.pop() {
            let node = tree.read_node(page).unwrap();
            if !is_root {
                assert!(
                    node.len() >= Node::min_fill(node.capacity()),
                    "underfull node: {} entries",
                    node.len()
                );
            }
            if let NodeEntries::Internal(children) = node.entries {
                for (_, child) in children {
                    stack.push((child, false));
                }
            }
        }
    }
}
