//! # gir-rtree
//!
//! An R\*-tree [Beckmann et al., SIGMOD 1990] over the `gir-storage` page
//! store — the spatial access method the paper assumes for its
//! disk-resident, low-dimensional datasets (§3.3, §8):
//!
//! * [`Mbb`] — minimum bounding boxes with the R\* cost metrics (area,
//!   margin, overlap),
//! * [`Node`] — 4 KiB page layout for leaf and internal nodes,
//! * [`RTree`] — dynamic insertion with R\* split + forced reinsert, STR
//!   bulk loading for benchmark-scale dataset builds, and window queries,
//! * [`Record`] — the `(id, attributes)` rows stored at the leaves.
//!
//! Score-based traversal (BRS / BBS) lives in `gir-query`; this crate only
//! provides the spatial substrate and node access with I/O accounting.

pub mod mbb;
pub mod node;
pub mod record;
pub mod tree;

pub use mbb::Mbb;
pub use node::{Node, NodeEntries};
pub use record::Record;
pub use tree::{RTree, RTreeError};
