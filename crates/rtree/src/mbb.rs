//! Minimum bounding boxes and the R\* split cost metrics.

use gir_geometry::vector::PointD;
use serde::{Deserialize, Serialize};

/// An axis-aligned minimum bounding box in `[0,1]^d`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mbb {
    /// Lower corner.
    pub lo: PointD,
    /// Upper corner.
    pub hi: PointD,
}

impl Mbb {
    /// Degenerate box around a single point.
    pub fn point(p: &PointD) -> Mbb {
        Mbb {
            lo: p.clone(),
            hi: p.clone(),
        }
    }

    /// The empty box (inverted bounds); union with anything yields the
    /// other operand.
    pub fn empty(d: usize) -> Mbb {
        Mbb {
            lo: PointD::splat(d, f64::INFINITY),
            hi: PointD::splat(d, f64::NEG_INFINITY),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// True when no point has been added yet.
    pub fn is_empty(&self) -> bool {
        (0..self.dim()).any(|i| self.lo[i] > self.hi[i])
    }

    /// Expands in place to cover `p`.
    pub fn expand_point(&mut self, p: &PointD) {
        for i in 0..self.dim() {
            self.lo[i] = self.lo[i].min(p[i]);
            self.hi[i] = self.hi[i].max(p[i]);
        }
    }

    /// Expands in place to cover `other`.
    pub fn expand_mbb(&mut self, other: &Mbb) {
        for i in 0..self.dim() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Union of two boxes.
    pub fn union(&self, other: &Mbb) -> Mbb {
        let mut m = self.clone();
        m.expand_mbb(other);
        m
    }

    /// Box volume (area in 2-d).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..self.dim()).map(|i| self.hi[i] - self.lo[i]).product()
    }

    /// Margin: sum of side lengths (the R\* split axis metric).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..self.dim()).map(|i| self.hi[i] - self.lo[i]).sum()
    }

    /// Volume of the intersection with `other` (R\* overlap metric).
    pub fn overlap(&self, other: &Mbb) -> f64 {
        let mut v = 1.0;
        for i in 0..self.dim() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Area increase required to also cover `other`.
    pub fn enlargement(&self, other: &Mbb) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True when `p` lies inside (closed) bounds.
    pub fn contains_point(&self, p: &PointD) -> bool {
        (0..self.dim()).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// True when `other` lies fully inside `self`.
    pub fn contains_mbb(&self, other: &Mbb) -> bool {
        (0..self.dim()).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// True when the boxes intersect (closed).
    pub fn intersects(&self, other: &Mbb) -> bool {
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// Center point.
    pub fn center(&self) -> PointD {
        let d = self.dim();
        PointD::from(
            (0..d)
                .map(|i| (self.lo[i] + self.hi[i]) / 2.0)
                .collect::<Vec<_>>(),
        )
    }

    /// The corner with all-maximal coordinates: under a monotone
    /// increasing scoring function this corner attains the node's
    /// *maxscore*, the BRS upper bound (paper §2).
    pub fn top_corner(&self) -> &PointD {
        &self.hi
    }

    /// Bounding box of a set of points.
    pub fn of_points<'a>(points: impl IntoIterator<Item = &'a PointD>, d: usize) -> Mbb {
        let mut m = Mbb::empty(d);
        for p in points {
            m.expand_point(p);
        }
        m
    }

    /// Bounding box of a set of boxes.
    pub fn of_mbbs<'a>(mbbs: impl IntoIterator<Item = &'a Mbb>, d: usize) -> Mbb {
        let mut m = Mbb::empty(d);
        for b in mbbs {
            m.expand_mbb(b);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbb(lo: &[f64], hi: &[f64]) -> Mbb {
        Mbb {
            lo: PointD::from(lo),
            hi: PointD::from(hi),
        }
    }

    #[test]
    fn area_margin() {
        let m = mbb(&[0.0, 0.0], &[0.5, 0.25]);
        assert!((m.area() - 0.125).abs() < 1e-12);
        assert!((m.margin() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn union_and_enlargement() {
        let a = mbb(&[0.0, 0.0], &[0.5, 0.5]);
        let b = mbb(&[0.6, 0.6], &[0.7, 0.7]);
        let u = a.union(&b);
        assert_eq!(u, mbb(&[0.0, 0.0], &[0.7, 0.7]));
        assert!((a.enlargement(&b) - (0.49 - 0.25)).abs() < 1e-12);
        assert_eq!(a.enlargement(&mbb(&[0.1, 0.1], &[0.2, 0.2])), 0.0);
    }

    #[test]
    fn overlap_metric() {
        let a = mbb(&[0.0, 0.0], &[0.5, 0.5]);
        let b = mbb(&[0.25, 0.25], &[0.75, 0.75]);
        assert!((a.overlap(&b) - 0.0625).abs() < 1e-12);
        let c = mbb(&[0.6, 0.6], &[0.7, 0.7]);
        assert_eq!(a.overlap(&c), 0.0);
    }

    #[test]
    fn containment_and_intersection() {
        let a = mbb(&[0.0, 0.0], &[1.0, 1.0]);
        let b = mbb(&[0.2, 0.2], &[0.4, 0.4]);
        assert!(a.contains_mbb(&b));
        assert!(!b.contains_mbb(&a));
        assert!(a.intersects(&b));
        assert!(a.contains_point(&PointD::new(vec![1.0, 1.0])));
        assert!(!a.contains_point(&PointD::new(vec![1.0, 1.1])));
    }

    #[test]
    fn empty_box_behaviour() {
        let mut e = Mbb::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        e.expand_point(&PointD::new(vec![0.3, 0.4]));
        assert!(!e.is_empty());
        assert_eq!(e, Mbb::point(&PointD::new(vec![0.3, 0.4])));
    }

    #[test]
    fn of_points_covers_all() {
        let pts = [
            PointD::new(vec![0.1, 0.9]),
            PointD::new(vec![0.5, 0.2]),
            PointD::new(vec![0.3, 0.4]),
        ];
        let m = Mbb::of_points(pts.iter(), 2);
        assert_eq!(m, mbb(&[0.1, 0.2], &[0.5, 0.9]));
        for p in &pts {
            assert!(m.contains_point(p));
        }
    }

    #[test]
    fn top_corner_is_hi() {
        let m = mbb(&[0.1, 0.2], &[0.5, 0.9]);
        assert_eq!(m.top_corner().coords(), &[0.5, 0.9]);
    }
}
