//! Data records.

use gir_geometry::vector::PointD;
use serde::{Deserialize, Serialize};

/// A dataset record: an identifier plus `d` numeric attributes in `[0,1]`
/// (paper §3.1 assumes normalized data and query spaces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Stable record identifier.
    pub id: u64,
    /// Attribute vector `x_1..x_d`.
    pub attrs: PointD,
}

impl Record {
    /// Creates a record.
    pub fn new(id: u64, attrs: impl Into<PointD>) -> Self {
        Record {
            id,
            attrs: attrs.into(),
        }
    }

    /// Attribute dimensionality.
    pub fn dim(&self) -> usize {
        self.attrs.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = Record::new(7, vec![0.1, 0.9]);
        assert_eq!(r.id, 7);
        assert_eq!(r.dim(), 2);
        assert_eq!(r.attrs[1], 0.9);
    }
}
