//! Framed, checksummed write-ahead log.
//!
//! One WAL record is a self-describing frame:
//!
//! ```text
//! [magic: u32 LE][payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Appends go through a [`LogFile`], so the log runs over the real
//! filesystem, memory, or the crash-injecting wrapper
//! ([`crate::vfs`]). Durability is governed by the [`FsyncPolicy`]
//! knob; [`Wal::open`] replays the frames back and **truncates the torn
//! tail** — any trailing bytes that do not form a complete, CRC-valid
//! frame (the residue of a crash mid-append). Because a fatal crash
//! tears at most the last in-flight append, every synced prefix is a
//! run of valid frames; mid-log corruption therefore also stops the
//! replay at the first bad frame, which is the conservative (prefix
//! only) reading of the log.

use crate::crc::crc32;
use crate::pagestore::StorageError;
use crate::vfs::LogFile;

/// Frame magic: `b"GIWL"` little-endian.
const WAL_MAGIC: u32 = u32::from_le_bytes(*b"GIWL");

/// Frame header bytes (magic + len + crc).
pub const WAL_HEADER: usize = 12;

/// When appended WAL bytes are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record: zero committed batches lost on crash,
    /// one device flush per append.
    Always,
    /// fsync after every `n` records: amortised flushes, at most `n-1`
    /// committed-but-unsynced records lost on a real power failure.
    EveryN(u64),
    /// Never fsync from the WAL (the OS flushes when it pleases):
    /// fastest, loss window unbounded. Appropriate for tests, benches,
    /// and replicated setups whose redundancy is elsewhere.
    Never,
}

/// What [`Wal::open`] found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalOpenReport {
    /// Complete, CRC-valid records replayed.
    pub records: u64,
    /// Torn-tail bytes dropped (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

/// An open write-ahead log.
pub struct Wal {
    file: Box<dyn LogFile>,
    policy: FsyncPolicy,
    unsynced: u64,
    records: u64,
    bytes: u64,
}

/// Scans `raw` as a run of WAL frames: returns the CRC-valid payloads
/// in append order and the byte offset where the valid prefix ends
/// (everything past it is a torn tail or mid-log corruption).
fn scan_frames(raw: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut payloads = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &raw[off..];
        if rest.len() < WAL_HEADER {
            break;
        }
        let magic = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if magic != WAL_MAGIC {
            break;
        }
        let len = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[8..12].try_into().unwrap());
        let Some(payload) = rest.get(WAL_HEADER..WAL_HEADER + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        off += WAL_HEADER + len;
    }
    (payloads, off)
}

impl Wal {
    /// Wraps a freshly created (empty) log file.
    pub fn create(file: Box<dyn LogFile>, policy: FsyncPolicy) -> Wal {
        Wal {
            file,
            policy,
            unsynced: 0,
            records: 0,
            bytes: 0,
        }
    }

    /// Opens an existing log: scans the frames, validates each CRC,
    /// truncates the torn tail, and returns the log positioned for
    /// appending plus the valid payloads in append order.
    pub fn open(
        mut file: Box<dyn LogFile>,
        policy: FsyncPolicy,
    ) -> Result<(Wal, Vec<Vec<u8>>, WalOpenReport), StorageError> {
        let raw = file.read_all()?;
        let (payloads, off) = scan_frames(&raw);
        let truncated = (raw.len() - off) as u64;
        if truncated > 0 {
            file.truncate(off as u64)?;
            tracing::event!("wal_truncated", bytes = truncated);
        }
        let report = WalOpenReport {
            records: payloads.len() as u64,
            truncated_bytes: truncated,
        };
        let wal = Wal {
            file,
            policy,
            unsynced: 0,
            records: report.records,
            bytes: off as u64,
        };
        Ok((wal, payloads, report))
    }

    /// Appends one record and applies the fsync policy. On error the
    /// log must be considered torn: the caller degrades to read-only
    /// and the next open truncates whatever partial frame landed.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        let mut frame = Vec::with_capacity(WAL_HEADER + payload.len());
        frame.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.append(&frame)?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        tracing::event!("wal_append", bytes = frame.len() as u64);
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync()?;
        self.unsynced = 0;
        tracing::event!("wal_fsync");
        Ok(())
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Reads the payload suffix starting at record index `from_record`
    /// (0-based, append order) — the delta stream a lagging replica
    /// replays to catch up after a snapshot restore. Unsynced appends
    /// are visible (the read goes through the same [`LogFile`]), and
    /// only the CRC-valid prefix of the log is served, so a torn tail
    /// never reaches a replica.
    pub fn tail(&mut self, from_record: u64) -> Result<Vec<Vec<u8>>, StorageError> {
        let raw = self.file.read_all()?;
        let (mut payloads, _) = scan_frames(&raw);
        let skip = (from_record as usize).min(payloads.len());
        Ok(payloads.split_off(skip))
    }

    /// Log length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{LogDir, MemDir};

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.create("wal").unwrap(), FsyncPolicy::EveryN(2));
        for i in 0..5u8 {
            wal.append(&[i; 3]).unwrap();
        }
        assert_eq!(wal.records(), 5);

        let (wal, payloads, report) =
            Wal::open(dir.open("wal").unwrap(), FsyncPolicy::Never).unwrap();
        assert_eq!(
            report,
            WalOpenReport {
                records: 5,
                truncated_bytes: 0
            }
        );
        assert_eq!(wal.records(), 5);
        assert_eq!(payloads, (0..5u8).map(|i| vec![i; 3]).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        // Build a 3-record log, then cut it at every possible byte
        // length: open must recover exactly the records whose frames
        // survive whole, and drop the rest.
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.create("wal").unwrap(), FsyncPolicy::Never);
        let frames = [vec![1u8; 7], vec![2u8; 1], vec![3u8; 19]];
        let mut boundaries = vec![0u64];
        for p in &frames {
            wal.append(p).unwrap();
            boundaries.push(wal.len_bytes());
        }
        let full = dir.open("wal").unwrap().read_all().unwrap();
        for cut in 0..=full.len() {
            let dir2 = MemDir::new();
            dir2.create("wal").unwrap().append(&full[..cut]).unwrap();
            let (_, payloads, report) =
                Wal::open(dir2.open("wal").unwrap(), FsyncPolicy::Never).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(payloads.len(), whole, "cut at {cut}");
            assert_eq!(payloads, frames[..whole].to_vec(), "cut at {cut}");
            assert_eq!(
                report.truncated_bytes,
                cut as u64 - boundaries[whole],
                "cut at {cut}"
            );
            // The truncation is persisted: a second open sees a clean log.
            let (_, _, again) = Wal::open(dir2.open("wal").unwrap(), FsyncPolicy::Never).unwrap();
            assert_eq!(again.truncated_bytes, 0, "cut at {cut}");
        }
    }

    #[test]
    fn tail_streams_the_suffix_from_any_record() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.create("wal").unwrap(), FsyncPolicy::Never);
        let frames: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; i as usize + 1]).collect();
        for p in &frames {
            wal.append(p).unwrap();
        }
        for from in 0..=7u64 {
            let got = wal.tail(from).unwrap();
            let want = frames[(from as usize).min(frames.len())..].to_vec();
            assert_eq!(got, want, "tail from {from}");
        }
        // Appends made after a tail() call show up in the next one.
        wal.append(b"late").unwrap();
        assert_eq!(wal.tail(6).unwrap(), vec![b"late".to_vec()]);
    }

    #[test]
    fn corrupt_frame_stops_replay_at_the_valid_prefix() {
        let dir = MemDir::new();
        let mut wal = Wal::create(dir.create("wal").unwrap(), FsyncPolicy::Always);
        wal.append(b"good").unwrap();
        wal.append(b"evil").unwrap();
        // Flip one payload bit of the second frame.
        let mut raw = dir.open("wal").unwrap().read_all().unwrap();
        let second_payload = WAL_HEADER + 4 + WAL_HEADER;
        raw[second_payload] ^= 0x40;
        let dir2 = MemDir::new();
        dir2.create("wal").unwrap().append(&raw).unwrap();
        let (_, payloads, report) =
            Wal::open(dir2.open("wal").unwrap(), FsyncPolicy::Never).unwrap();
        assert_eq!(payloads, vec![b"good".to_vec()]);
        assert_eq!(report.records, 1);
        assert!(report.truncated_bytes > 0);
    }
}
