//! # gir-storage
//!
//! Paged storage engine with explicit I/O accounting.
//!
//! The paper's experiments (§8) place data and R\*-tree indices on disk in
//! 4 KByte pages and report CPU and I/O time separately; no buffer pool is
//! used because "none of the methods fetches the same index or data page
//! twice". This crate reproduces that setting:
//!
//! * [`PageStore`] — the storage abstraction used by `gir-rtree`,
//! * [`MemPageStore`] — in-memory backing (the paper's memory-resident
//!   scenario; I/O counters still track logical page fetches),
//! * [`FilePageStore`] — file backing for true disk-resident runs,
//! * [`IoStats`] / [`CostModel`] — page-fetch counters and the latency
//!   model that converts them to milliseconds (substitution for the 2014
//!   spinning-disk hardware; see DESIGN.md §5).

pub mod costmodel;
pub mod iostats;
pub mod page;
pub mod pagestore;

pub use costmodel::CostModel;
pub use iostats::{IoStats, IoStatsSnapshot};
pub use page::{PageBuf, PAGE_SIZE};
pub use pagestore::{FilePageStore, MemPageStore, PageId, PageStore, StorageError};
