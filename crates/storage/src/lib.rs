//! # gir-storage
//!
//! Paged storage engine with explicit I/O accounting.
//!
//! The paper's experiments (§8) place data and R\*-tree indices on disk in
//! 4 KByte pages and report CPU and I/O time separately; no buffer pool is
//! used because "none of the methods fetches the same index or data page
//! twice". This crate reproduces that setting:
//!
//! * [`PageStore`] — the storage abstraction used by `gir-rtree`,
//! * [`MemPageStore`] — in-memory backing (the paper's memory-resident
//!   scenario; I/O counters still track logical page fetches),
//! * [`FilePageStore`] — file backing for true disk-resident runs,
//! * [`IoStats`] / [`CostModel`] — page-fetch counters and the latency
//!   model that converts them to milliseconds (substitution for the 2014
//!   spinning-disk hardware; see DESIGN.md §5).
//!
//! The durability tier lives here too (ARCHITECTURE.md "Durability"):
//!
//! * [`Wal`] — framed, CRC-checksummed write-ahead log with an
//!   [`FsyncPolicy`] knob and torn-tail truncation on open,
//! * [`snapshot`] — atomic (write-tmp, fsync, rename) CRC-framed
//!   snapshot files,
//! * [`vfs`] — the [`LogDir`]/[`LogFile`] abstraction the WAL and
//!   snapshots run over: real filesystem ([`FsDir`]), memory
//!   ([`MemDir`]), and the crash-point fault injector ([`CrashDir`])
//!   behind the recovery ≡ never-crashed differential proofs,
//! * [`crc`] — the CRC-32 used by WAL frames, snapshots, and
//!   [`FilePageStore`] page trailers.

pub mod costmodel;
pub mod crc;
pub mod iostats;
pub mod page;
pub mod pagestore;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use costmodel::CostModel;
pub use crc::crc32;
pub use iostats::{IoStats, IoStatsSnapshot};
pub use page::{PageBuf, PAGE_SIZE};
pub use pagestore::{FilePageStore, MemPageStore, PageId, PageStore, StorageError};
pub use snapshot::{read_snapshot, write_snapshot};
pub use vfs::{CrashClock, CrashDir, FsDir, LogDir, LogFile, MemDir};
pub use wal::{FsyncPolicy, Wal, WalOpenReport};
