//! Disk latency cost model.
//!
//! Substitution for the paper's 2014-era testbed (DESIGN.md §5): instead
//! of timing a physical spinning disk, logical page fetches are converted
//! to milliseconds with a configurable per-page latency. Page *counts* are
//! the invariant being compared across methods; the latency only scales
//! the reported axis.

use crate::iostats::IoStatsSnapshot;
use serde::{Deserialize, Serialize};

/// Converts page counts into I/O time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Milliseconds per page read.
    pub read_ms: f64,
    /// Milliseconds per page write.
    pub write_ms: f64,
}

impl CostModel {
    /// A 2014-era commodity disk serving scattered 4 KiB pages from an
    /// R-tree traversal: dominated by seek/rotation, ~0.1 ms effective
    /// (short-stroked / partially sequential workloads).
    pub fn disk_2014() -> Self {
        CostModel {
            read_ms: 0.1,
            write_ms: 0.1,
        }
    }

    /// Memory-resident scenario: I/O time is identically zero, matching
    /// the paper's remark that the CPU charts alone cover this case (§8).
    pub fn memory() -> Self {
        CostModel {
            read_ms: 0.0,
            write_ms: 0.0,
        }
    }

    /// Total I/O time in milliseconds for a snapshot delta.
    pub fn io_ms(&self, stats: &IoStatsSnapshot) -> f64 {
        stats.reads as f64 * self.read_ms + stats.writes as f64 * self.write_ms
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::disk_2014()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_model_charges_reads_and_writes() {
        let m = CostModel::disk_2014();
        let s = IoStatsSnapshot {
            reads: 100,
            writes: 50,
        };
        assert!((m.io_ms(&s) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn memory_model_is_free() {
        let m = CostModel::memory();
        let s = IoStatsSnapshot {
            reads: 1_000_000,
            writes: 42,
        };
        assert_eq!(m.io_ms(&s), 0.0);
    }
}
