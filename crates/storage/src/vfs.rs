//! A minimal virtual filesystem for append-only log and snapshot files.
//!
//! The durability tier (WAL + snapshots, `wal`/`snapshot` modules) does
//! all its I/O through the [`LogDir`]/[`LogFile`] traits so the same
//! recovery code runs over three backings:
//!
//! * [`FsDir`] — the real filesystem (production),
//! * [`MemDir`] — an in-memory directory (unit tests, benches; also the
//!   surviving "disk image" a crash test recovers from),
//! * [`CrashDir`] — wraps a [`MemDir`] and kills I/O at an injected
//!   operation index, modelling a process crash: the fatal *append*
//!   persists a torn prefix of its payload (a partial sector write) and
//!   every subsequent mutating operation fails. The underlying
//!   [`MemDir`] is exactly the bytes a real disk would hold at the
//!   moment of death, so recovery runs against it directly.
//!
//! The surface is deliberately tiny — append, sync, read-all, truncate,
//! plus create/open/rename/remove/list on the directory — because that
//! is all a WAL and a write-new-then-rename snapshot protocol need.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// One append-only log (or snapshot) file.
///
/// `len` is fallible (it may stat the filesystem), so there is no
/// paired `is_empty`.
#[allow(clippy::len_without_is_empty)]
pub trait LogFile: Send {
    /// Appends `data` at the end of the file.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Forces appended bytes to stable storage (fsync).
    fn sync(&mut self) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;

    /// Reads the whole file.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;

    /// Truncates the file to `len` bytes (recovery drops torn tails).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// A flat directory of [`LogFile`]s.
pub trait LogDir: Send + Sync {
    /// Creates (or truncates) a file.
    fn create(&self, name: &str) -> io::Result<Box<dyn LogFile>>;

    /// Opens an existing file (read + append).
    fn open(&self, name: &str) -> io::Result<Box<dyn LogFile>>;

    /// True when `name` exists.
    fn exists(&self, name: &str) -> io::Result<bool>;

    /// Atomically renames `from` to `to` (snapshot commit point).
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Removes a file.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Lists file names (unordered).
    fn list(&self) -> io::Result<Vec<String>>;
}

// ---------------------------------------------------------------- FsDir

/// Real-filesystem [`LogDir`] rooted at one directory.
pub struct FsDir {
    root: PathBuf,
}

impl FsDir {
    /// Opens (creating if needed) the directory at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<FsDir> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FsDir { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

struct FsLogFile {
    file: File,
}

impl LogFile for FsLogFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

impl LogDir for FsDir {
    fn create(&self, name: &str) -> io::Result<Box<dyn LogFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path(name))?;
        Ok(Box::new(FsLogFile { file }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn LogFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.path(name))?;
        Ok(Box::new(FsLogFile { file }))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        Ok(self.path(name).exists())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }
}

// --------------------------------------------------------------- MemDir

type MemFiles = Arc<Mutex<BTreeMap<String, Arc<Mutex<Vec<u8>>>>>>;

/// In-memory [`LogDir`]. `Clone` shares the same directory, so a test
/// can keep a handle to the "disk image" while a [`CrashDir`] wrapper
/// dies, then recover from the surviving bytes.
#[derive(Clone, Default)]
pub struct MemDir {
    files: MemFiles,
}

impl MemDir {
    /// An empty in-memory directory.
    pub fn new() -> MemDir {
        MemDir::default()
    }

    fn get(&self, name: &str) -> Option<Arc<Mutex<Vec<u8>>>> {
        self.files.lock().get(name).cloned()
    }
}

struct MemLogFile {
    data: Arc<Mutex<Vec<u8>>>,
}

impl LogFile for MemLogFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.data.lock().extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.data.lock().len() as u64)
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.data.lock().clone())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut data = self.data.lock();
        if (len as usize) < data.len() {
            data.truncate(len as usize);
        }
        Ok(())
    }
}

impl LogDir for MemDir {
    fn create(&self, name: &str) -> io::Result<Box<dyn LogFile>> {
        let data = Arc::new(Mutex::new(Vec::new()));
        self.files.lock().insert(name.to_string(), data.clone());
        Ok(Box::new(MemLogFile { data }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn LogFile>> {
        let data = self
            .get(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no file {name}")))?;
        Ok(Box::new(MemLogFile { data }))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        Ok(self.files.lock().contains_key(name))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut files = self.files.lock();
        let data = files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no file {from}")))?;
        files.insert(to.to_string(), data);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no file {name}")))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.lock().keys().cloned().collect())
    }
}

// ------------------------------------------------------------- CrashDir

/// Shared crash clock: a countdown of mutating I/O operations. When it
/// reaches zero the "process" is dead — the in-flight operation fails
/// (an append first persists a torn prefix) and every later mutating
/// operation fails too, until [`CrashClock::disarm`] models the reboot.
pub struct CrashClock {
    remaining: AtomicI64,
    torn: AtomicU64,
}

impl CrashClock {
    /// A clock that kills the `budget + 1`-th mutating operation.
    /// `torn_seed` drives the deterministic choice of how many bytes of
    /// the fatal append survive.
    pub fn new(budget: u64, torn_seed: u64) -> Arc<CrashClock> {
        Arc::new(CrashClock {
            remaining: AtomicI64::new(budget.min(i64::MAX as u64) as i64),
            torn: AtomicU64::new(torn_seed | 1),
        })
    }

    /// True when the crash point has been reached.
    pub fn dead(&self) -> bool {
        self.remaining.load(Ordering::Relaxed) <= 0
    }

    /// Revives I/O (the reboot): recovery code may then reuse the same
    /// wrapper, though tests usually recover from the inner [`MemDir`].
    pub fn disarm(&self) {
        self.remaining.store(i64::MAX, Ordering::Relaxed);
    }

    /// Re-arms the clock: the `budget + 1`-th mutating operation from
    /// now dies. Lets tests run setup I/O for free before the fault
    /// window opens.
    pub fn arm(&self, budget: u64) {
        self.remaining
            .store(budget.min(i64::MAX as u64) as i64, Ordering::Relaxed);
    }

    /// Spends one operation; false once the budget is exhausted.
    fn tick(&self) -> bool {
        self.remaining.fetch_sub(1, Ordering::Relaxed) > 0
    }

    /// Deterministic torn-prefix length in `0..=max` for the fatal append.
    fn torn_len(&self, max: usize) -> usize {
        // LCG step (MMIX constants): deterministic across platforms.
        let s = self
            .torn
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(
                    s.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407),
                )
            })
            .unwrap();
        ((s >> 33) as usize) % (max + 1)
    }
}

fn crashed() -> io::Error {
    io::Error::other("injected crash: process died")
}

/// A [`LogDir`] wrapper that injects a crash at an operation index.
///
/// Mutating operations (create / append / sync / truncate / rename /
/// remove) each spend one unit of the shared [`CrashClock`] budget;
/// read-only operations are free (a dead process performs none, and
/// recovery reads from the inner [`MemDir`] anyway). The fatal append
/// writes a deterministic torn prefix of its payload before failing —
/// exactly the partial-sector state a power loss leaves behind.
pub struct CrashDir {
    inner: MemDir,
    clock: Arc<CrashClock>,
}

impl CrashDir {
    /// Wraps `inner`, sharing `clock` across every file handle.
    pub fn new(inner: MemDir, clock: Arc<CrashClock>) -> CrashDir {
        CrashDir { inner, clock }
    }
}

struct CrashFile {
    inner: Box<dyn LogFile>,
    clock: Arc<CrashClock>,
}

impl LogFile for CrashFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        if !self.clock.tick() {
            // The torn tail: a prefix of the payload reaches the disk.
            let keep = self.clock.torn_len(data.len());
            let _ = self.inner.append(&data[..keep]);
            return Err(crashed());
        }
        self.inner.append(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        if !self.clock.tick() {
            return Err(crashed());
        }
        self.inner.sync()
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        if !self.clock.tick() {
            return Err(crashed());
        }
        self.inner.truncate(len)
    }
}

impl LogDir for CrashDir {
    fn create(&self, name: &str) -> io::Result<Box<dyn LogFile>> {
        if !self.clock.tick() {
            return Err(crashed());
        }
        let inner = self.inner.create(name)?;
        Ok(Box::new(CrashFile {
            inner,
            clock: self.clock.clone(),
        }))
    }

    fn open(&self, name: &str) -> io::Result<Box<dyn LogFile>> {
        if self.clock.dead() {
            return Err(crashed());
        }
        let inner = self.inner.open(name)?;
        Ok(Box::new(CrashFile {
            inner,
            clock: self.clock.clone(),
        }))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        self.inner.exists(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        if !self.clock.tick() {
            return Err(crashed());
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        if !self.clock.tick() {
            return Err(crashed());
        }
        self.inner.remove(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dir: &dyn LogDir) {
        let mut f = dir.create("a.log").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len().unwrap(), 11);
        assert_eq!(f.read_all().unwrap(), b"hello world");
        f.truncate(5).unwrap();
        assert_eq!(dir.open("a.log").unwrap().read_all().unwrap(), b"hello");

        dir.rename("a.log", "b.log").unwrap();
        assert!(!dir.exists("a.log").unwrap());
        assert!(dir.exists("b.log").unwrap());
        assert!(dir.list().unwrap().contains(&"b.log".to_string()));
        dir.remove("b.log").unwrap();
        assert!(dir.open("b.log").is_err());
    }

    #[test]
    fn mem_dir_roundtrip() {
        roundtrip(&MemDir::new());
    }

    #[test]
    fn fs_dir_roundtrip() {
        let root = std::env::temp_dir().join(format!("gir-vfs-test-{}", std::process::id()));
        roundtrip(&FsDir::new(&root).unwrap());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn crash_dir_kills_io_and_leaves_a_torn_prefix() {
        let mem = MemDir::new();
        // Budget 2: create + first append succeed, second append dies.
        let clock = CrashClock::new(2, 0x5EED);
        let dir = CrashDir::new(mem.clone(), clock.clone());
        let mut f = dir.create("w.log").unwrap();
        f.append(b"AAAA").unwrap();
        let err = f.append(b"BBBBBBBB").unwrap_err();
        assert!(err.to_string().contains("injected crash"));
        assert!(clock.dead());
        // Everything after the crash fails too.
        assert!(f.append(b"C").is_err());
        assert!(f.sync().is_err());
        assert!(dir.create("x.log").is_err());
        assert!(dir.rename("w.log", "y.log").is_err());
        // The surviving image: the full first append plus a torn prefix
        // (possibly empty, never the whole payload plus more).
        let bytes = mem.open("w.log").unwrap().read_all().unwrap();
        assert!(bytes.starts_with(b"AAAA"));
        assert!(bytes.len() <= 4 + 8);
        assert!(bytes[4..].iter().all(|&b| b == b'B'));
    }
}
