//! Page store implementations.

use crate::iostats::{IoStats, IoStatsSnapshot};
use crate::page::{PageBuf, PAGE_SIZE};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a page within a store.
pub type PageId = u64;

/// Errors surfaced by page stores.
#[derive(Debug)]
pub enum StorageError {
    /// The page id has never been allocated/written.
    NoSuchPage(PageId),
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// Stored bytes failed validation (checksum mismatch, torn write,
    /// bad frame): the data on disk cannot be trusted. Unlike
    /// [`StorageError::Io`] this is not transient — retrying the read
    /// returns the same corrupt bytes.
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NoSuchPage(id) => write!(f, "no such page: {id}"),
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(why) => write!(f, "corrupt storage: {why}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Abstraction over paged storage with logical I/O accounting.
///
/// All methods take `&self`; implementations use interior mutability so
/// index traversals can share the store.
pub trait PageStore: Send + Sync {
    /// Allocates a fresh page id (contents initially zeroed).
    fn allocate(&self) -> PageId;

    /// Reads a page image; counts one logical read.
    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError>;

    /// Writes a page image; counts one logical write.
    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError>;

    /// Current counter values.
    fn stats(&self) -> IoStatsSnapshot;

    /// Zeroes the counters (between benchmark phases).
    fn reset_stats(&self);

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// In-memory page store. This is both the paper's memory-resident
/// scenario and the default benchmark substrate (logical reads are still
/// counted, so I/O *cost* can be modelled without touching a device).
pub struct MemPageStore {
    // RwLock: concurrent query traversals only read; bulk load and
    // insertion paths take the write lock.
    pages: RwLock<Vec<Option<Bytes>>>,
    stats: IoStats,
}

impl MemPageStore {
    /// Creates an empty store. `page_size` must equal [`PAGE_SIZE`]
    /// (the argument documents intent at call sites).
    pub fn new(page_size: usize) -> Self {
        assert_eq!(page_size, PAGE_SIZE, "only 4 KiB pages are supported");
        MemPageStore {
            pages: RwLock::new(Vec::new()),
            stats: IoStats::new(),
        }
    }
}

impl Default for MemPageStore {
    fn default() -> Self {
        Self::new(PAGE_SIZE)
    }
}

impl PageStore for MemPageStore {
    fn allocate(&self) -> PageId {
        let mut pages = self.pages.write();
        pages.push(None);
        (pages.len() - 1) as PageId
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        let pages = self.pages.read();
        let slot = pages.get(id as usize).ok_or(StorageError::NoSuchPage(id))?;
        self.stats.record_read();
        match slot {
            Some(b) => Ok(b.clone()),
            None => Ok(Bytes::from(vec![0u8; PAGE_SIZE])),
        }
    }

    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError> {
        let mut pages = self.pages.write();
        let slot = pages
            .get_mut(id as usize)
            .ok_or(StorageError::NoSuchPage(id))?;
        self.stats.record_write();
        *slot = Some(page.freeze());
        Ok(())
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset()
    }

    fn num_pages(&self) -> u64 {
        self.pages.read().len() as u64
    }
}

/// File-backed page store (true disk-resident runs).
///
/// On-disk layout: one fixed-size **slot** per page id —
///
/// ```text
/// [magic: u32 LE][crc32(payload): u32 LE][payload: PAGE_SIZE bytes]
/// ```
///
/// The 8-byte trailer-style header lets [`FilePageStore::read_page`]
/// detect torn or bit-rotted pages ([`StorageError::Corrupt`]) instead
/// of silently returning garbage, and lets [`FilePageStore::open`]
/// restore `next_id` from the file length alone. An all-zero slot is an
/// allocated-but-never-written page and reads back as zeros (holes left
/// by sparse writes have the same image, so the two cases are
/// deliberately indistinguishable).
pub struct FilePageStore {
    file: Mutex<File>,
    next_id: AtomicU64,
    stats: IoStats,
}

/// Slot magic: `b"GIPG"` little-endian.
const PAGE_MAGIC: u32 = u32::from_le_bytes(*b"GIPG");
/// Slot header bytes (magic + crc).
const SLOT_HEADER: usize = 8;
/// Bytes per on-disk slot.
const SLOT_SIZE: usize = SLOT_HEADER + PAGE_SIZE;

impl FilePageStore {
    /// Creates (**truncating**) a store file at `path`. Destroys any
    /// existing store — use [`FilePageStore::open`] to resume one.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            file: Mutex::new(file),
            next_id: AtomicU64::new(0),
            stats: IoStats::new(),
        })
    }

    /// Reopens an existing store file, restoring the allocation
    /// high-water mark from the file length: a trailing partial slot
    /// (a write torn by a crash) still claims its id, so the page reads
    /// as [`StorageError::Corrupt`] until rewritten rather than being
    /// silently re-issued.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        let next_id = len.div_ceil(SLOT_SIZE as u64);
        Ok(FilePageStore {
            file: Mutex::new(file),
            next_id: AtomicU64::new(next_id),
            stats: IoStats::new(),
        })
    }
}

impl PageStore for FilePageStore {
    fn allocate(&self) -> PageId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        if id >= self.next_id.load(Ordering::Relaxed) {
            return Err(StorageError::NoSuchPage(id));
        }
        let mut file = self.file.lock();
        let mut buf = vec![0u8; SLOT_SIZE];
        file.seek(SeekFrom::Start(id * SLOT_SIZE as u64))?;
        // The file may end short of the slot (allocated-but-unwritten
        // tail pages, or a torn final write): read what exists.
        let mut got = 0usize;
        while got < SLOT_SIZE {
            match file.read(&mut buf[got..])? {
                0 => break,
                n => got += n,
            }
        }
        self.stats.record_read();
        if buf[..got].iter().all(|&b| b == 0) {
            // Unwritten page (or a hole): reads back zeroed, like
            // MemPageStore's unwritten slots.
            return Ok(Bytes::from(vec![0u8; PAGE_SIZE]));
        }
        if got < SLOT_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page {id}: torn write ({got} of {SLOT_SIZE} bytes)"
            )));
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != PAGE_MAGIC {
            return Err(StorageError::Corrupt(format!("page {id}: bad slot magic")));
        }
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        buf.drain(..SLOT_HEADER);
        if crate::crc::crc32(&buf) != crc {
            return Err(StorageError::Corrupt(format!(
                "page {id}: checksum mismatch"
            )));
        }
        Ok(Bytes::from(buf))
    }

    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError> {
        if id >= self.next_id.load(Ordering::Relaxed) {
            return Err(StorageError::NoSuchPage(id));
        }
        // One contiguous write of header + payload: a torn slot is a
        // prefix, which read_page flags via the short-read / CRC path.
        let mut slot = Vec::with_capacity(SLOT_SIZE);
        slot.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        slot.extend_from_slice(&crate::crc::crc32(page.as_slice()).to_le_bytes());
        slot.extend_from_slice(page.as_slice());
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * SLOT_SIZE as u64))?;
        file.write_all(&slot)?;
        self.stats.record_write();
        Ok(())
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset()
    }

    fn num_pages(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &dyn PageStore) {
        let a = store.allocate();
        let b = store.allocate();
        assert_ne!(a, b);

        let mut pa = PageBuf::zeroed();
        pa.as_mut_slice()[0] = 0xAA;
        store.write_page(a, pa).unwrap();

        let got = store.read_page(a).unwrap();
        assert_eq!(got[0], 0xAA);
        // Unwritten page reads back zeroed.
        let zeroed = store.read_page(b).unwrap();
        assert!(zeroed.iter().all(|&x| x == 0));

        let s = store.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        store.reset_stats();
        assert_eq!(store.stats().reads, 0);
        assert_eq!(store.num_pages(), 2);
    }

    #[test]
    fn mem_store_roundtrip() {
        let store = MemPageStore::new(PAGE_SIZE);
        roundtrip(&store);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join("gir-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("pages-{}.db", std::process::id()));
        let store = FilePageStore::create(&path).unwrap();
        roundtrip(&store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_page_errors() {
        let store = MemPageStore::new(PAGE_SIZE);
        assert!(matches!(
            store.read_page(3),
            Err(StorageError::NoSuchPage(3))
        ));
        assert!(matches!(
            store.write_page(0, PageBuf::zeroed()),
            Err(StorageError::NoSuchPage(0))
        ));
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gir-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.db", std::process::id()))
    }

    #[test]
    fn open_restores_next_id_and_contents() {
        let path = temp_path("reopen");
        {
            let store = FilePageStore::create(&path).unwrap();
            for i in 0..7u8 {
                let id = store.allocate();
                let mut p = PageBuf::zeroed();
                p.as_mut_slice()[0] = i + 1;
                store.write_page(id, p).unwrap();
            }
        }
        // Reopen: the high-water mark comes back from the file length,
        // so fresh allocations never clobber existing pages.
        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.num_pages(), 7);
        for i in 0..7u8 {
            assert_eq!(store.read_page(i as PageId).unwrap()[0], i + 1);
        }
        let fresh = store.allocate();
        assert_eq!(fresh, 7);
        let mut p = PageBuf::zeroed();
        p.as_mut_slice()[0] = 0xFF;
        store.write_page(fresh, p).unwrap();
        for i in 0..7u8 {
            assert_eq!(store.read_page(i as PageId).unwrap()[0], i + 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let path = temp_path("never-created");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            FilePageStore::open(&path),
            Err(StorageError::Io(_))
        ));
    }

    #[test]
    fn torn_page_write_reads_as_corrupt() {
        let path = temp_path("torn");
        let store = FilePageStore::create(&path).unwrap();
        let id = store.allocate();
        let mut p = PageBuf::zeroed();
        p.as_mut_slice().fill(0x5A);
        store.write_page(id, p).unwrap();
        drop(store);

        // Tear the slot: keep only the first 100 bytes (header + a
        // sliver of payload), as a crash mid-write would.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..100]).unwrap();
        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.num_pages(), 1, "the torn slot still owns its id");
        assert!(matches!(store.read_page(id), Err(StorageError::Corrupt(_))));

        // Rewriting the page heals it.
        let mut p = PageBuf::zeroed();
        p.as_mut_slice().fill(0x7B);
        store.write_page(id, p).unwrap();
        assert_eq!(store.read_page(id).unwrap()[0], 0x7B);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_bit_reads_as_corrupt_not_garbage() {
        let path = temp_path("bitrot");
        let store = FilePageStore::create(&path).unwrap();
        let a = store.allocate();
        let b = store.allocate();
        for id in [a, b] {
            let mut p = PageBuf::zeroed();
            p.as_mut_slice().fill(id as u8 + 1);
            store.write_page(id, p).unwrap();
        }
        drop(store);

        // Flip one payload byte inside page b's slot.
        let mut raw = std::fs::read(&path).unwrap();
        let off = SLOT_SIZE + SLOT_HEADER + 1000;
        raw[off] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();

        let store = FilePageStore::open(&path).unwrap();
        assert_eq!(store.read_page(a).unwrap()[0], 1, "page a is untouched");
        assert!(matches!(store.read_page(b), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_store_persists_across_pages() {
        let dir = std::env::temp_dir().join("gir-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("pages2-{}.db", std::process::id()));
        let store = FilePageStore::create(&path).unwrap();
        let ids: Vec<PageId> = (0..10).map(|_| store.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut p = PageBuf::zeroed();
            p.as_mut_slice()[0] = i as u8;
            store.write_page(id, p).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(store.read_page(id).unwrap()[0], i as u8);
        }
        std::fs::remove_file(&path).ok();
    }
}
