//! Page store implementations.

use crate::iostats::{IoStats, IoStatsSnapshot};
use crate::page::{PageBuf, PAGE_SIZE};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a page within a store.
pub type PageId = u64;

/// Errors surfaced by page stores.
#[derive(Debug)]
pub enum StorageError {
    /// The page id has never been allocated/written.
    NoSuchPage(PageId),
    /// Underlying file I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NoSuchPage(id) => write!(f, "no such page: {id}"),
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Abstraction over paged storage with logical I/O accounting.
///
/// All methods take `&self`; implementations use interior mutability so
/// index traversals can share the store.
pub trait PageStore: Send + Sync {
    /// Allocates a fresh page id (contents initially zeroed).
    fn allocate(&self) -> PageId;

    /// Reads a page image; counts one logical read.
    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError>;

    /// Writes a page image; counts one logical write.
    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError>;

    /// Current counter values.
    fn stats(&self) -> IoStatsSnapshot;

    /// Zeroes the counters (between benchmark phases).
    fn reset_stats(&self);

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
}

/// In-memory page store. This is both the paper's memory-resident
/// scenario and the default benchmark substrate (logical reads are still
/// counted, so I/O *cost* can be modelled without touching a device).
pub struct MemPageStore {
    // RwLock: concurrent query traversals only read; bulk load and
    // insertion paths take the write lock.
    pages: RwLock<Vec<Option<Bytes>>>,
    stats: IoStats,
}

impl MemPageStore {
    /// Creates an empty store. `page_size` must equal [`PAGE_SIZE`]
    /// (the argument documents intent at call sites).
    pub fn new(page_size: usize) -> Self {
        assert_eq!(page_size, PAGE_SIZE, "only 4 KiB pages are supported");
        MemPageStore {
            pages: RwLock::new(Vec::new()),
            stats: IoStats::new(),
        }
    }
}

impl Default for MemPageStore {
    fn default() -> Self {
        Self::new(PAGE_SIZE)
    }
}

impl PageStore for MemPageStore {
    fn allocate(&self) -> PageId {
        let mut pages = self.pages.write();
        pages.push(None);
        (pages.len() - 1) as PageId
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        let pages = self.pages.read();
        let slot = pages.get(id as usize).ok_or(StorageError::NoSuchPage(id))?;
        self.stats.record_read();
        match slot {
            Some(b) => Ok(b.clone()),
            None => Ok(Bytes::from(vec![0u8; PAGE_SIZE])),
        }
    }

    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError> {
        let mut pages = self.pages.write();
        let slot = pages
            .get_mut(id as usize)
            .ok_or(StorageError::NoSuchPage(id))?;
        self.stats.record_write();
        *slot = Some(page.freeze());
        Ok(())
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset()
    }

    fn num_pages(&self) -> u64 {
        self.pages.read().len() as u64
    }
}

/// File-backed page store (true disk-resident runs).
pub struct FilePageStore {
    file: Mutex<File>,
    next_id: AtomicU64,
    stats: IoStats,
}

impl FilePageStore {
    /// Creates (or truncates) a store file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            file: Mutex::new(file),
            next_id: AtomicU64::new(0),
            stats: IoStats::new(),
        })
    }
}

impl PageStore for FilePageStore {
    fn allocate(&self) -> PageId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn read_page(&self, id: PageId) -> Result<Bytes, StorageError> {
        if id >= self.next_id.load(Ordering::Relaxed) {
            return Err(StorageError::NoSuchPage(id));
        }
        let mut file = self.file.lock();
        let mut buf = vec![0u8; PAGE_SIZE];
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        // Pages allocated but never written read back as zeros: the file
        // may be shorter than the page end, so fill what exists.
        let mut read = 0usize;
        while read < PAGE_SIZE {
            match file.read(&mut buf[read..])? {
                0 => break,
                n => read += n,
            }
        }
        self.stats.record_read();
        Ok(Bytes::from(buf))
    }

    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError> {
        if id >= self.next_id.load(Ordering::Relaxed) {
            return Err(StorageError::NoSuchPage(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(page.as_slice())?;
        self.stats.record_write();
        Ok(())
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset()
    }

    fn num_pages(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &dyn PageStore) {
        let a = store.allocate();
        let b = store.allocate();
        assert_ne!(a, b);

        let mut pa = PageBuf::zeroed();
        pa.as_mut_slice()[0] = 0xAA;
        store.write_page(a, pa).unwrap();

        let got = store.read_page(a).unwrap();
        assert_eq!(got[0], 0xAA);
        // Unwritten page reads back zeroed.
        let zeroed = store.read_page(b).unwrap();
        assert!(zeroed.iter().all(|&x| x == 0));

        let s = store.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        store.reset_stats();
        assert_eq!(store.stats().reads, 0);
        assert_eq!(store.num_pages(), 2);
    }

    #[test]
    fn mem_store_roundtrip() {
        let store = MemPageStore::new(PAGE_SIZE);
        roundtrip(&store);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join("gir-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("pages-{}.db", std::process::id()));
        let store = FilePageStore::create(&path).unwrap();
        roundtrip(&store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_page_errors() {
        let store = MemPageStore::new(PAGE_SIZE);
        assert!(matches!(
            store.read_page(3),
            Err(StorageError::NoSuchPage(3))
        ));
        assert!(matches!(
            store.write_page(0, PageBuf::zeroed()),
            Err(StorageError::NoSuchPage(0))
        ));
    }

    #[test]
    fn file_store_persists_across_pages() {
        let dir = std::env::temp_dir().join("gir-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("pages2-{}.db", std::process::id()));
        let store = FilePageStore::create(&path).unwrap();
        let ids: Vec<PageId> = (0..10).map(|_| store.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut p = PageBuf::zeroed();
            p.as_mut_slice()[0] = i as u8;
            store.write_page(id, p).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(store.read_page(id).unwrap()[0], i as u8);
        }
        std::fs::remove_file(&path).ok();
    }
}
