//! Atomic snapshot files: one CRC-framed payload, committed by rename.
//!
//! A snapshot is written as a single frame (the WAL frame layout with
//! its own magic) into `<name>.tmp`, fsynced, then renamed to `<name>`
//! — so a reader never observes a partially written snapshot under the
//! final name, and a crash at any point leaves either the old
//! generation intact or the new one complete. [`read_snapshot`]
//! validates the magic, the length, and the CRC, surfacing
//! [`StorageError::Corrupt`] rather than garbage state.

use crate::crc::crc32;
use crate::pagestore::StorageError;
use crate::vfs::LogDir;
use crate::wal::WAL_HEADER;

/// Frame magic: `b"GISN"` little-endian.
const SNAP_MAGIC: u32 = u32::from_le_bytes(*b"GISN");

/// Writes `payload` as snapshot `name`: tmp file → append frame →
/// fsync → rename (the commit point).
pub fn write_snapshot(dir: &dyn LogDir, name: &str, payload: &[u8]) -> Result<(), StorageError> {
    let tmp = format!("{name}.tmp");
    let mut file = dir.create(&tmp)?;
    let mut frame = Vec::with_capacity(WAL_HEADER + payload.len());
    frame.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    file.append(&frame)?;
    file.sync()?;
    drop(file);
    dir.rename(&tmp, name)?;
    tracing::event!("snapshot_write", bytes = frame.len() as u64);
    Ok(())
}

/// Reads and validates snapshot `name`.
pub fn read_snapshot(dir: &dyn LogDir, name: &str) -> Result<Vec<u8>, StorageError> {
    let raw = dir.open(name)?.read_all()?;
    let corrupt = |why: &str| StorageError::Corrupt(format!("snapshot {name}: {why}"));
    if raw.len() < WAL_HEADER {
        return Err(corrupt("shorter than the frame header"));
    }
    let magic = u32::from_le_bytes(raw[0..4].try_into().unwrap());
    if magic != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let len = u32::from_le_bytes(raw[4..8].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    if raw.len() != WAL_HEADER + len {
        return Err(corrupt("length mismatch"));
    }
    let payload = &raw[WAL_HEADER..];
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemDir;

    #[test]
    fn roundtrip_and_tmp_cleanup() {
        let dir = MemDir::new();
        write_snapshot(&dir, "snap-1", b"state bytes").unwrap();
        assert!(!dir.exists("snap-1.tmp").unwrap());
        assert_eq!(read_snapshot(&dir, "snap-1").unwrap(), b"state bytes");
    }

    #[test]
    fn truncated_or_flipped_snapshot_is_corrupt() {
        let dir = MemDir::new();
        write_snapshot(&dir, "snap-1", b"state bytes").unwrap();
        let raw = dir.open("snap-1").unwrap().read_all().unwrap();

        // Every strict prefix fails validation (short header, length
        // mismatch) — none is silently accepted.
        for cut in 0..raw.len() {
            let dir2 = MemDir::new();
            dir2.create("snap-1").unwrap().append(&raw[..cut]).unwrap();
            assert!(
                matches!(
                    read_snapshot(&dir2, "snap-1"),
                    Err(StorageError::Corrupt(_))
                ),
                "prefix of {cut} bytes must be corrupt"
            );
        }

        // A payload bit-flip fails the CRC.
        let mut flipped = raw.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x08;
        let dir3 = MemDir::new();
        dir3.create("snap-1").unwrap().append(&flipped).unwrap();
        assert!(matches!(
            read_snapshot(&dir3, "snap-1"),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_snapshot_is_io_not_corrupt() {
        let dir = MemDir::new();
        assert!(matches!(
            read_snapshot(&dir, "snap-9"),
            Err(StorageError::Io(_))
        ));
    }
}
