//! Page-level I/O counters.
//!
//! Logical page fetches are the hardware-independent I/O metric all three
//! GIR methods are compared on; `CostModel` converts them to the
//! milliseconds the paper reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe I/O counters owned by a page store.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// Pages fetched.
    pub reads: u64,
    /// Pages written.
    pub writes: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one page read. Mirrors the access as a `page_read`
    /// tracing event when observability is on (one relaxed load when
    /// off), so the metrics registry and per-query EXPLAIN see logical
    /// I/O without a second counting layer.
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        tracing::event!("page_read");
    }

    /// Records one page write (mirrored as a `page_write` event, as in
    /// [`IoStats::record_read`]).
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        tracing::event!("page_write");
    }

    /// Snapshot of current counts.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

impl IoStatsSnapshot {
    /// Reads performed between `earlier` and `self`.
    pub fn reads_since(&self, earlier: &IoStatsSnapshot) -> u64 {
        self.reads.saturating_sub(earlier.reads)
    }

    /// Writes performed between `earlier` and `self`.
    pub fn writes_since(&self, earlier: &IoStatsSnapshot) -> u64 {
        self.writes.saturating_sub(earlier.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn deltas_between_snapshots() {
        let s = IoStats::new();
        s.record_read();
        let a = s.snapshot();
        s.record_read();
        s.record_read();
        s.record_write();
        let b = s.snapshot();
        assert_eq!(b.reads_since(&a), 2);
        assert_eq!(b.writes_since(&a), 1);
        // Saturates rather than underflows when reversed.
        assert_eq!(a.reads_since(&b), 0);
    }

    #[test]
    fn concurrent_counting() {
        use std::sync::Arc;
        let s = Arc::new(IoStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().reads, 4000);
    }
}
