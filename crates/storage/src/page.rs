//! Fixed-size page buffers.

use bytes::{Bytes, BytesMut};

/// Page size in bytes, matching the paper's 4 KByte disk pages (§8).
pub const PAGE_SIZE: usize = 4096;

/// An owned, mutable page image being assembled before a write.
#[derive(Debug, Clone)]
pub struct PageBuf {
    buf: BytesMut,
}

impl PageBuf {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        PageBuf {
            buf: BytesMut::zeroed(PAGE_SIZE),
        }
    }

    /// Wraps raw bytes; pads with zeros or panics when longer than a page.
    pub fn from_slice(data: &[u8]) -> Self {
        assert!(
            data.len() <= PAGE_SIZE,
            "page overflow: {} bytes",
            data.len()
        );
        let mut buf = BytesMut::zeroed(PAGE_SIZE);
        buf[..data.len()].copy_from_slice(data);
        PageBuf { buf }
    }

    /// Read access to the full page image.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Write access to the full page image.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Freezes into an immutable page image.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_page_size() {
        let p = PageBuf::zeroed();
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn from_slice_pads() {
        let p = PageBuf::from_slice(&[1, 2, 3]);
        assert_eq!(&p.as_slice()[..3], &[1, 2, 3]);
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
        assert_eq!(p.as_slice()[3], 0);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_slice_panics() {
        let _ = PageBuf::from_slice(&vec![0u8; PAGE_SIZE + 1]);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut p = PageBuf::zeroed();
        p.as_mut_slice()[100] = 42;
        let b = p.freeze();
        assert_eq!(b.len(), PAGE_SIZE);
        assert_eq!(b[100], 42);
    }
}
