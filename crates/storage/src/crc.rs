//! CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum guarding
//! every WAL frame, snapshot frame, and page trailer in this crate.
//!
//! Hand-rolled table-driven implementation: the build container is
//! offline, so no external crc crate is available, and the algorithm is
//! ~20 lines. The constants match the ubiquitous zlib/`crc32fast`
//! definition (init `!0`, reflected polynomial `0xEDB8_8320`, final
//! xor `!0`), verified against the standard `"123456789"` check value
//! in the tests below.

/// 256-entry lookup table for the reflected IEEE polynomial.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE, reflected — the zlib definition).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC-32/IEEE check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        let a = crc32(b"durability");
        let mut flipped = b"durability".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped), "single-bit flip must change the CRC");
    }
}
