//! Concurrent `FilePageStore` hammer: parallel readers and writers over
//! one store file, then an exact reconciliation of the [`IoStats`]
//! logical counters against the operations the threads actually issued.
//!
//! Slot writes are single contiguous `write_all`s under the store's
//! file mutex, so a racing read must observe either the old or the new
//! image of a page — never a CRC failure and never a blend.

use gir_storage::{FilePageStore, IoStats, PageBuf, PageId, PageStore, StorageError, PAGE_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fills a page with a recognisable image: every byte is a function of
/// (page id, version), so a reader can verify integrity end-to-end.
fn image(id: PageId, version: u8) -> PageBuf {
    let mut p = PageBuf::zeroed();
    let stamp = (id as u8).wrapping_mul(31).wrapping_add(version);
    p.as_mut_slice().fill(stamp);
    p
}

#[test]
fn concurrent_readers_and_writers_reconcile_iostats_exactly() {
    let dir = std::env::temp_dir().join("gir-storage-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("hammer-{}.db", std::process::id()));
    let store = Arc::new(FilePageStore::create(&path).unwrap());

    // Phase 0 (sequential): allocate and write version-0 images.
    const PAGES: u64 = 32;
    let ids: Vec<PageId> = (0..PAGES).map(|_| store.allocate()).collect();
    for &id in &ids {
        store.write_page(id, image(id, 0)).unwrap();
    }
    store.reset_stats();

    // Phase 1 (parallel): writers bump page versions while readers
    // validate whatever version they catch. Every issued op is counted
    // on the caller side; IoStats must agree exactly afterwards.
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const OPS_PER_THREAD: u64 = 400;
    let issued_reads = Arc::new(AtomicU64::new(0));
    let issued_writes = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let store = store.clone();
            let issued_writes = issued_writes.clone();
            scope.spawn(move || {
                let mut rng = 0x9E37_79B9_u64.wrapping_mul(w as u64 + 1) | 1;
                for op in 0..OPS_PER_THREAD {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let id = rng % PAGES;
                    let version = 1 + ((w as u64 * OPS_PER_THREAD + op) % 200) as u8;
                    store.write_page(id, image(id, version)).unwrap();
                    issued_writes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for r in 0..READERS {
            let store = store.clone();
            let issued_reads = issued_reads.clone();
            scope.spawn(move || {
                let mut rng = 0xA24B_AED4_u64.wrapping_mul(r as u64 + 1) | 1;
                for _ in 0..OPS_PER_THREAD {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let id = rng % PAGES;
                    let page = match store.read_page(id) {
                        Ok(p) => p,
                        Err(e @ StorageError::Corrupt(_)) => {
                            panic!("racing read observed a corrupt page: {e}")
                        }
                        Err(e) => panic!("read failed: {e}"),
                    };
                    issued_reads.fetch_add(1, Ordering::Relaxed);
                    // The image is internally consistent: one (id,
                    // version) stamp across the whole page.
                    let stamp = page[0];
                    assert!(
                        page.iter().all(|&b| b == stamp),
                        "page {id}: blended read (first byte {stamp:#x})"
                    );
                    assert_eq!(page.len(), PAGE_SIZE);
                }
            });
        }
    });

    let stats = store.stats();
    assert_eq!(
        stats.reads,
        issued_reads.load(Ordering::Relaxed),
        "logical read counter must reconcile exactly"
    );
    assert_eq!(
        stats.writes,
        issued_writes.load(Ordering::Relaxed),
        "logical write counter must reconcile exactly"
    );
    assert_eq!(stats.writes, (WRITERS as u64) * OPS_PER_THREAD);
    assert_eq!(stats.reads, (READERS as u64) * OPS_PER_THREAD);

    // The IoStats type itself stays shareable across threads.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IoStats>();

    std::fs::remove_file(&path).ok();
}
