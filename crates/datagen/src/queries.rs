//! Random query workloads.

use gir_geometry::vector::PointD;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates `count` random query vectors uniform in `[lo, 1]^d`.
///
/// The paper averages every measurement over 100 random queries (§8).
/// A small positive floor (default callers use 0.05) avoids degenerate
/// all-but-zero weight vectors for which the score ordering is driven by
/// one dimension only.
pub fn random_queries(count: usize, d: usize, lo: f64, seed: u64) -> Vec<PointD> {
    assert!((0.0..1.0).contains(&lo), "weight floor must be in [0,1)");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BADCAFE);
    (0..count)
        .map(|_| {
            PointD::from(
                (0..d)
                    .map(|_| rng.random_range(lo..=1.0))
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_in_range() {
        let qs = random_queries(100, 4, 0.05, 1);
        assert_eq!(qs.len(), 100);
        for q in &qs {
            assert_eq!(q.dim(), 4);
            assert!(q.coords().iter().all(|&w| (0.05..=1.0).contains(&w)));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_queries(10, 3, 0.0, 7), random_queries(10, 3, 0.0, 7));
        assert_ne!(random_queries(10, 3, 0.0, 7), random_queries(10, 3, 0.0, 8));
    }

    #[test]
    #[should_panic(expected = "weight floor")]
    fn bad_floor_rejected() {
        let _ = random_queries(1, 2, 1.0, 0);
    }
}
