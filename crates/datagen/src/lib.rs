//! # gir-datagen
//!
//! Workload generators for the GIR experiments (paper §8):
//!
//! * [`synthetic()`] — the standard preference-query benchmarks of
//!   Börzsönyi et al. \[8\]: **Independent** (uniform), **Correlated**
//!   (records good in one dimension tend to be good in all) and
//!   **Anti-correlated** (good in one dimension, bad in the rest),
//! * [`house_like`] / [`hotel_like`] — synthetic stand-ins for the
//!   paper's real datasets (see DESIGN.md §5: the originals are not
//!   redistributable). HOUSE: 315,265 × 6 positively-correlated,
//!   heavy-tailed expenditure attributes; HOTEL: 418,843 × 4 mixed-
//!   correlation attributes with a discretized "stars" dimension,
//! * [`random_queries`] — uniform random query vectors (the paper
//!   averages each measurement over 100 random queries),
//! * [`partition`] — partition-aware generators shaping grid-band
//!   shard occupancy (uniform vs hot-band skew) for the `gir-shard`
//!   scale-out scenarios,
//! * [`planner_stress`] — traffic shapes that punish a wrong miss-path
//!   choice (Zipf query skew, skyline-targeted churn, d ∈ {5,6}
//!   mixes), used by the serve planner's tests and benches.
//!
//! All attributes are normalized to `[0,1]` and ids are dense `0..n`.

pub mod partition;
pub mod planner_stress;
pub mod queries;
pub mod real_like;
pub mod synthetic;

pub use partition::{grid_occupancy, sharded_synthetic, ShardSkew};
pub use planner_stress::{high_d_mix, skyline_churn, zipfian_queries, ChurnOp, HighDMix};
pub use queries::random_queries;
pub use real_like::{hotel_like, house_like, HOTEL_CARDINALITY, HOUSE_CARDINALITY};
pub use synthetic::{synthetic, Distribution};
