//! IND / COR / ANTI generators.

use gir_rtree::Record;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three standard synthetic distributions (paper §8, \[8\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Distribution {
    /// Attributes i.i.d. uniform on `[0,1]`.
    Independent,
    /// Records that are good in one dimension tend to be good in all:
    /// attributes cluster around a per-record quality level drawn from a
    /// peaked distribution.
    Correlated,
    /// Records that are good in one dimension tend to be bad in the
    /// others: points concentrate near a hyperplane `Σ x_i ≈ const`.
    Anticorrelated,
}

impl Distribution {
    /// Short label used in benchmark tables ("IND"/"COR"/"ANTI").
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Independent => "IND",
            Distribution::Correlated => "COR",
            Distribution::Anticorrelated => "ANTI",
        }
    }
}

/// Standard normal via Box–Muller (the `rand` crate alone ships no
/// Gaussian sampler; `rand_distr` is outside the approved dependency set).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Generates `n` records of dimensionality `d`, deterministically from
/// `seed`.
pub fn synthetic(dist: Distribution, n: usize, d: usize, seed: u64) -> Vec<Record> {
    assert!(d >= 1, "dimensionality must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1575EED);
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        let attrs: Vec<f64> = match dist {
            Distribution::Independent => (0..d).map(|_| rng.random_range(0.0..1.0)).collect(),
            Distribution::Correlated => {
                // Per-record quality level, peaked at 0.5; attributes
                // scatter tightly around it.
                let v = clamp01(0.5 + 0.15 * normal(&mut rng));
                (0..d)
                    .map(|_| clamp01(v + 0.05 * normal(&mut rng)))
                    .collect()
            }
            Distribution::Anticorrelated => {
                // Points near the plane Σ x_i = d·v with v peaked at 0.5:
                // a Dirichlet(1,…,1) split of the total keeps the sum
                // fixed, so one large coordinate forces the rest small.
                let v = clamp01(0.5 + 0.05 * normal(&mut rng));
                let total = v * d as f64;
                let exp: Vec<f64> = (0..d)
                    .map(|_| -f64::ln(rng.random_range(f64::MIN_POSITIVE..1.0)))
                    .collect();
                let sum: f64 = exp.iter().sum();
                exp.into_iter().map(|e| clamp01(total * e / sum)).collect()
            }
        };
        out.push(Record::new(id as u64, attrs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(data: &[Record], i: usize, j: usize) -> f64 {
        let n = data.len() as f64;
        let mi: f64 = data.iter().map(|r| r.attrs[i]).sum::<f64>() / n;
        let mj: f64 = data.iter().map(|r| r.attrs[j]).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vi = 0.0;
        let mut vj = 0.0;
        for r in data {
            let a = r.attrs[i] - mi;
            let b = r.attrs[j] - mj;
            cov += a * b;
            vi += a * a;
            vj += b * b;
        }
        cov / (vi.sqrt() * vj.sqrt())
    }

    #[test]
    fn all_distributions_in_unit_cube_with_dense_ids() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::Anticorrelated,
        ] {
            let data = synthetic(dist, 500, 4, 7);
            assert_eq!(data.len(), 500);
            for (i, r) in data.iter().enumerate() {
                assert_eq!(r.id, i as u64);
                assert_eq!(r.dim(), 4);
                assert!(r.attrs.coords().iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic(Distribution::Correlated, 100, 3, 42);
        let b = synthetic(Distribution::Correlated, 100, 3, 42);
        let c = synthetic(Distribution::Correlated, 100, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn correlation_signs() {
        let cor = synthetic(Distribution::Correlated, 4000, 3, 1);
        let anti = synthetic(Distribution::Anticorrelated, 4000, 3, 1);
        let ind = synthetic(Distribution::Independent, 4000, 3, 1);
        assert!(pearson(&cor, 0, 1) > 0.5, "COR r = {}", pearson(&cor, 0, 1));
        assert!(
            pearson(&anti, 0, 1) < -0.2,
            "ANTI r = {}",
            pearson(&anti, 0, 1)
        );
        assert!(
            pearson(&ind, 0, 1).abs() < 0.1,
            "IND r = {}",
            pearson(&ind, 0, 1)
        );
    }

    #[test]
    fn anti_correlated_has_widest_skyline() {
        // The motivating property for the paper's experiments (Fig 6a).
        use gir_geometry::dominance::skyline_indices;
        let n = 2000;
        let sky_size = |dist| {
            let data = synthetic(dist, n, 3, 9);
            let pts: Vec<_> = data.iter().map(|r| r.attrs.clone()).collect();
            skyline_indices(&pts).len()
        };
        let ind = sky_size(Distribution::Independent);
        let cor = sky_size(Distribution::Correlated);
        let anti = sky_size(Distribution::Anticorrelated);
        assert!(anti > ind, "ANTI {anti} vs IND {ind}");
        assert!(ind > cor, "IND {ind} vs COR {cor}");
    }

    #[test]
    fn labels() {
        assert_eq!(Distribution::Independent.label(), "IND");
        assert_eq!(Distribution::Correlated.label(), "COR");
        assert_eq!(Distribution::Anticorrelated.label(), "ANTI");
    }
}
