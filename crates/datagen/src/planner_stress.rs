//! Planner-stress workloads: traffic shapes that punish a wrong
//! miss-path choice.
//!
//! The serve layer's adaptive planner (`gir_core::plan`) picks between
//! cold, indexed, and sharded miss paths from a measured cost model.
//! These generators build the traffic where a *static* policy loses:
//!
//! * [`zipfian_queries`] — query-weight skew: anchor popularity follows
//!   Zipf(s), so a handful of hot anchors accumulate Phase-2 reuse
//!   while the long tail stays cold. A planner that generalizes the hot
//!   anchors' hit rate to the tail dispatches expensive indexed
//!   recomputes where a cold scan wins.
//! * [`skyline_churn`] — adversarial delete-then-reinsert bursts aimed
//!   at skyline members. Every burst perturbs exactly the records the
//!   prune index is built from, invalidating shared Phase-2 systems and
//!   punishing a planner that assumes the index stays warm.
//! * [`high_d_mix`] — d ∈ {5, 6} dataset/query mixes, deep in the
//!   regime where `BENCH_cold_gir.json` shows the indexed recompute
//!   path losing to the cold path (skyline growth is super-linear in
//!   d, paper §8).

use crate::queries::random_queries;
use crate::synthetic::{synthetic, Distribution};
use gir_geometry::dominance::skyline_indices;
use gir_geometry::vector::PointD;
use gir_rtree::Record;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One mutation in a churn burst (see [`skyline_churn`]). Deletes carry
/// the full record so replay layers that need the attributes for
/// region-maintenance classification (e.g. `gir_serve::Update::Delete`)
/// can be driven without a side lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnOp {
    /// Remove this record from the dataset.
    Delete(Record),
    /// Re-insert a previously deleted record, unchanged.
    Reinsert(Record),
}

/// Generates `count` query vectors jittered around `anchors` preference
/// anchors whose popularity follows a Zipf(`s`) law: anchor `i` is
/// drawn with probability ∝ `1/(i+1)^s`.
///
/// At `s = 0` every anchor is equally likely (uniform anchors); `s ≈ 1`
/// is classic web-traffic skew. Weights stay in `[lo, 1]` (anchors are
/// drawn in `[max(lo, 0.2), 1]^d` — near-zero weights make degenerate
/// top-k orderings).
pub fn zipfian_queries(
    count: usize,
    d: usize,
    anchors: usize,
    s: f64,
    jitter: f64,
    lo: f64,
    seed: u64,
) -> Vec<PointD> {
    assert!(anchors >= 1, "need at least one anchor");
    assert!(s >= 0.0, "Zipf exponent must be non-negative");
    assert!((0.0..1.0).contains(&lo), "weight floor must be in [0,1)");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x21BF_5EED);
    let floor = lo.max(0.2);
    let anchor_pts: Vec<Vec<f64>> = (0..anchors)
        .map(|_| (0..d).map(|_| rng.random_range(floor..=1.0)).collect())
        .collect();
    // Cumulative Zipf mass; inverse-CDF sampling keeps us inside the
    // approved dependency set (no `rand_distr`).
    let mut cdf = Vec::with_capacity(anchors);
    let mut total = 0.0;
    for i in 0..anchors {
        total += 1.0 / ((i + 1) as f64).powf(s);
        cdf.push(total);
    }
    (0..count)
        .map(|_| {
            let u = rng.random_range(0.0..total);
            let idx = cdf.partition_point(|&c| c <= u).min(anchors - 1);
            let w: Vec<f64> = anchor_pts[idx]
                .iter()
                .map(|&v| (v + rng.random_range(-jitter..=jitter)).clamp(lo, 1.0))
                .collect();
            PointD::from(w)
        })
        .collect()
}

/// Generates `bursts` adversarial churn bursts over `data`: each burst
/// deletes `burst_width` current *skyline members* and then re-inserts
/// the same records, in deletion order.
///
/// Skyline members are exactly the records the prune index derives its
/// shared Phase-2 systems from, so every burst invalidates the warm
/// state an always-indexed policy banks on. Bursts rotate through the
/// skyline in a seeded shuffle; widths larger than the skyline are
/// clamped. Replaying a full burst leaves the dataset unchanged, so
/// bursts compose without liveness bookkeeping.
pub fn skyline_churn(
    data: &[Record],
    bursts: usize,
    burst_width: usize,
    seed: u64,
) -> Vec<Vec<ChurnOp>> {
    let pts: Vec<PointD> = data.iter().map(|r| r.attrs.clone()).collect();
    let mut sky: Vec<usize> = skyline_indices(&pts);
    assert!(!sky.is_empty(), "dataset has an empty skyline");
    let width = burst_width.clamp(1, sky.len());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A8_5EED);
    // Seeded Fisher–Yates; `rand`'s shuffle adapter is not in the
    // approved set's prelude, and explicit swaps keep the stream stable.
    for i in (1..sky.len()).rev() {
        let j = rng.random_range(0..=i);
        sky.swap(i, j);
    }
    let mut cursor = 0usize;
    (0..bursts)
        .map(|_| {
            let mut ops = Vec::with_capacity(2 * width);
            let victims: Vec<&Record> = (0..width)
                .map(|k| &data[sky[(cursor + k) % sky.len()]])
                .collect();
            cursor = (cursor + width) % sky.len();
            for r in &victims {
                ops.push(ChurnOp::Delete((*r).clone()));
            }
            for r in &victims {
                ops.push(ChurnOp::Reinsert((*r).clone()));
            }
            ops
        })
        .collect()
}

/// One high-dimensional dataset/query pairing from [`high_d_mix`].
#[derive(Debug, Clone)]
pub struct HighDMix {
    /// Attribute dimensionality (5 or 6).
    pub d: usize,
    /// Source distribution of `data`.
    pub dist: Distribution,
    /// The dataset, `n` records in `[0,1]^d`.
    pub data: Vec<Record>,
    /// Matched query vectors in `[0.05, 1]^d`.
    pub queries: Vec<PointD>,
}

/// Builds the d ∈ {5, 6} mixes — IND and ANTI at each dimensionality —
/// with `n` records and `queries` query vectors per mix.
///
/// These sit past the d = 4 crossover where the cold path overtakes the
/// indexed recompute (`BENCH_cold_gir.json`): ANTI at d = 6 has a
/// skyline so wide that recomputing per-member Phase-2 systems costs
/// multiples of one cold scan. A planner stuck on the index loses every
/// miss here.
pub fn high_d_mix(n: usize, queries: usize, seed: u64) -> Vec<HighDMix> {
    let mut out = Vec::with_capacity(4);
    for (i, &d) in [5usize, 6].iter().enumerate() {
        for (j, dist) in [Distribution::Independent, Distribution::Anticorrelated]
            .into_iter()
            .enumerate()
        {
            let mix_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((i * 2 + j) as u64);
            out.push(HighDMix {
                d,
                dist,
                data: synthetic(dist, n, d, mix_seed),
                queries: random_queries(queries, d, 0.05, mix_seed),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skews_traffic_toward_the_head() {
        let qs = zipfian_queries(2000, 3, 16, 1.2, 0.0, 0.05, 7);
        assert_eq!(qs.len(), 2000);
        // With jitter 0 every query IS its anchor; count distinct mass.
        let mut by_anchor: std::collections::HashMap<String, usize> = Default::default();
        for q in &qs {
            *by_anchor.entry(format!("{:?}", q.coords())).or_default() += 1;
        }
        assert!(by_anchor.len() > 1, "all mass on one anchor");
        let max = by_anchor.values().max().copied().unwrap();
        let min = by_anchor.values().min().copied().unwrap();
        // Zipf(1.2) over 16 anchors: the head anchor outdraws the tail
        // by an order of magnitude (expected ratio ≈ 28×).
        assert!(max >= 8 * min.max(1), "head {max} vs tail {min} — no skew");
    }

    #[test]
    fn zipf_zero_is_near_uniform_and_deterministic() {
        let a = zipfian_queries(512, 4, 8, 0.0, 0.01, 0.05, 3);
        let b = zipfian_queries(512, 4, 8, 0.0, 0.01, 0.05, 3);
        assert_eq!(a, b);
        for q in &a {
            assert!(q.coords().iter().all(|&w| (0.05..=1.0).contains(&w)));
        }
    }

    #[test]
    fn churn_targets_skyline_members_and_round_trips() {
        let data = synthetic(Distribution::Anticorrelated, 400, 3, 11);
        let pts: Vec<PointD> = data.iter().map(|r| r.attrs.clone()).collect();
        let sky: std::collections::HashSet<u64> = skyline_indices(&pts)
            .into_iter()
            .map(|i| data[i].id)
            .collect();
        let bursts = skyline_churn(&data, 6, 5, 42);
        assert_eq!(bursts.len(), 6);
        for burst in &bursts {
            assert_eq!(burst.len(), 10);
            let mut deleted: Vec<&Record> = Vec::new();
            for op in burst {
                match op {
                    ChurnOp::Delete(r) => {
                        assert!(sky.contains(&r.id), "churned non-skyline record {}", r.id);
                        deleted.push(r);
                    }
                    ChurnOp::Reinsert(r) => {
                        // Balanced: every reinsert restores a record the
                        // same burst deleted, attributes unchanged.
                        assert!(deleted.iter().any(|d| d.id == r.id && d.attrs == r.attrs));
                    }
                }
            }
            assert_eq!(deleted.len(), 5);
        }
        // Distinct bursts rotate victims rather than re-hitting one.
        assert_ne!(bursts[0], bursts[1]);
    }

    #[test]
    fn churn_is_deterministic_and_clamps_width() {
        let data = synthetic(Distribution::Correlated, 200, 2, 5);
        let a = skyline_churn(&data, 3, 10_000, 9);
        let b = skyline_churn(&data, 3, 10_000, 9);
        assert_eq!(a, b);
        let pts: Vec<PointD> = data.iter().map(|r| r.attrs.clone()).collect();
        let sky_len = skyline_indices(&pts).len();
        assert_eq!(a[0].len(), 2 * sky_len, "width clamps to the skyline");
    }

    #[test]
    fn high_d_mix_covers_both_dims_and_dists() {
        let mixes = high_d_mix(300, 20, 1);
        assert_eq!(mixes.len(), 4);
        let mut seen: Vec<(usize, &str)> = mixes.iter().map(|m| (m.d, m.dist.label())).collect();
        seen.sort();
        assert_eq!(seen, vec![(5, "ANTI"), (5, "IND"), (6, "ANTI"), (6, "IND")]);
        for m in &mixes {
            assert_eq!(m.data.len(), 300);
            assert_eq!(m.queries.len(), 20);
            assert!(m.data.iter().all(|r| r.dim() == m.d));
            assert!(m.queries.iter().all(|q| q.dim() == m.d));
        }
    }
}
