//! Partition-aware generators: shard-occupancy scenarios for the
//! `gir-shard` subsystem.
//!
//! Grid placement assigns a record to the band `⌊attr₀ · S⌋`, so the
//! occupancy histogram follows the first attribute's marginal. These
//! generators shape that marginal deliberately:
//!
//! * [`ShardSkew::Uniform`] leaves the base distribution alone —
//!   near-balanced bands,
//! * [`ShardSkew::HotBand`] concentrates a chosen fraction of the
//!   records in one band — the pathological placement a production
//!   sharding layer has to survive (one shard carries most of the
//!   Phase-2 work while its siblings idle).
//!
//! Hash placement ignores attributes entirely, so the same datasets
//! double as A/B inputs: skew hurts grid, never hash.

use crate::synthetic::{synthetic, Distribution};
use gir_rtree::Record;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How records distribute over grid bands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardSkew {
    /// Keep the base distribution's first-attribute marginal.
    Uniform,
    /// Pull `mass` (0..1) of the records into grid band `band` of
    /// `shards` by remapping their first attribute into that band's
    /// interval; the remaining records keep their original attribute.
    HotBand {
        /// Target band index (clamped to `shards − 1`).
        band: usize,
        /// Fraction of records concentrated in the band.
        mass: f64,
    },
}

/// Generates `n` records of dimensionality `d` with the grid-band
/// occupancy shaped by `skew` (for `shards` bands), deterministically
/// from `seed`. Attributes other than the first are untouched, so the
/// scoring geometry stays representative of the base distribution.
pub fn sharded_synthetic(
    dist: Distribution,
    n: usize,
    d: usize,
    seed: u64,
    shards: usize,
    skew: ShardSkew,
) -> Vec<Record> {
    let mut out = synthetic(dist, n, d, seed);
    let shards = shards.max(1);
    if let ShardSkew::HotBand { band, mass } = skew {
        let band = band.min(shards - 1);
        let width = 1.0 / shards as f64;
        let lo = band as f64 * width;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD_B00C);
        for rec in &mut out {
            if rng.random_bool(mass.clamp(0.0, 1.0)) {
                // Squash the original coordinate into the hot band,
                // preserving its relative position (and determinism).
                let x = rec.attrs[0].clamp(0.0, 1.0);
                rec.attrs[0] = lo + x * width * 0.999_999;
            }
        }
    }
    out
}

/// Grid-band occupancy histogram of `records` over `shards` bands —
/// mirrors `gir_shard::grid_band` (`⌊attr₀ · S⌋`, clamped).
pub fn grid_occupancy(records: &[Record], shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let mut counts = vec![0usize; shards];
    for rec in records {
        let band = ((rec.attrs[0].clamp(0.0, 1.0) * shards as f64) as usize).min(shards - 1);
        counts[band] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_skew_is_the_base_distribution() {
        let base = synthetic(Distribution::Independent, 500, 3, 11);
        let same = sharded_synthetic(Distribution::Independent, 500, 3, 11, 8, ShardSkew::Uniform);
        assert_eq!(base, same);
        let occ = grid_occupancy(&same, 8);
        assert_eq!(occ.iter().sum::<usize>(), 500);
        assert!(
            occ.iter().all(|&c| c > 20),
            "uniform bands too skewed: {occ:?}"
        );
    }

    #[test]
    fn hot_band_concentrates_the_requested_mass() {
        let skewed = sharded_synthetic(
            Distribution::Independent,
            2000,
            3,
            12,
            4,
            ShardSkew::HotBand { band: 2, mass: 0.8 },
        );
        let occ = grid_occupancy(&skewed, 4);
        assert_eq!(occ.iter().sum::<usize>(), 2000);
        // ~80% targeted + ~5% of the rest landing there naturally.
        assert!(occ[2] > 1500, "hot band underfilled: {occ:?}");
        for (i, &c) in occ.iter().enumerate() {
            if i != 2 {
                assert!(c < 300, "cold band overfilled: {occ:?}");
            }
        }
        // Attributes stay in the unit cube and deterministic per seed.
        for r in &skewed {
            assert!(r.attrs.coords().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        let again = sharded_synthetic(
            Distribution::Independent,
            2000,
            3,
            12,
            4,
            ShardSkew::HotBand { band: 2, mass: 0.8 },
        );
        assert_eq!(skewed, again);
    }

    #[test]
    fn band_index_clamps() {
        let skewed = sharded_synthetic(
            Distribution::Independent,
            300,
            2,
            13,
            4,
            ShardSkew::HotBand {
                band: 99,
                mass: 1.0,
            },
        );
        let occ = grid_occupancy(&skewed, 4);
        assert_eq!(occ[3], 300, "mass must land in the clamped last band");
    }
}
