//! Synthetic stand-ins for the HOUSE and HOTEL real datasets.
//!
//! The paper's real datasets (§8) are not redistributable, so we generate
//! datasets with the same cardinality, dimensionality and the structural
//! traits the experiments depend on (skyline width, correlation mix,
//! attribute tails). See DESIGN.md §5 for the substitution rationale.

use gir_rtree::Record;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Cardinality of the paper's HOUSE dataset (ipums.org).
pub const HOUSE_CARDINALITY: usize = 315_265;
/// Cardinality of the paper's HOTEL dataset (hotelsbase.org).
pub const HOTEL_CARDINALITY: usize = 418_843;

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// HOUSE-like data: six household-expenditure attributes (gas,
/// electricity, water, heating, insurance, property tax). Expenditures
/// share a latent "household wealth" factor (positive cross-correlation)
/// and are lognormal-tailed; `y / (1 + y)` maps the tail into `[0,1)`.
pub fn house_like(n: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0005EC0D);
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        let wealth = normal(&mut rng);
        let attrs: Vec<f64> = (0..6)
            .map(|_| {
                let y = (0.6 * wealth + 0.7 * normal(&mut rng)).exp();
                clamp01(y / (1.0 + y))
            })
            .collect();
        out.push(Record::new(id as u64, attrs));
    }
    out
}

/// HOTEL-like data: stars, price, number of rooms, number of facilities.
/// Stars are discrete (1–5, normalized), price and facilities correlate
/// positively with stars, rooms are roughly independent and heavy-tailed.
/// The paper ranks larger-is-better, so "price" here is value-for-money
/// oriented the same way as the other attributes.
pub fn hotel_like(n: usize, seed: u64) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00407E1);
    let mut out = Vec::with_capacity(n);
    for id in 0..n {
        // Star ratings skew toward 3: binomial-ish mixture.
        let stars = 1 + (0..4).filter(|_| rng.random_range(0.0..1.0) < 0.55).count() as u32;
        let s01 = stars as f64 / 5.0;
        let price =
            clamp01(0.65 * s01 + 0.25 * rng.random_range(0.0..1.0) + 0.08 * normal(&mut rng));
        let rooms = {
            let y = (0.9 * normal(&mut rng)).exp();
            clamp01(y / (1.0 + y))
        };
        let facilities = clamp01(0.5 * s01 + 0.4 * rng.random_range(0.0..1.0));
        out.push(Record::new(id as u64, vec![s01, price, rooms, facilities]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn house_shape() {
        let data = house_like(2000, 5);
        assert_eq!(data.len(), 2000);
        for r in &data {
            assert_eq!(r.dim(), 6);
            assert!(r.attrs.coords().iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn hotel_shape_and_discrete_stars() {
        let data = hotel_like(2000, 5);
        for r in &data {
            assert_eq!(r.dim(), 4);
            let s = r.attrs[0] * 5.0;
            assert!((s - s.round()).abs() < 1e-9, "stars not discrete: {s}");
            assert!((1.0..=5.0).contains(&s));
        }
    }

    #[test]
    fn house_attributes_positively_correlated() {
        let data = house_like(5000, 6);
        let n = data.len() as f64;
        let m0: f64 = data.iter().map(|r| r.attrs[0]).sum::<f64>() / n;
        let m1: f64 = data.iter().map(|r| r.attrs[1]).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut v0 = 0.0;
        let mut v1 = 0.0;
        for r in &data {
            let a = r.attrs[0] - m0;
            let b = r.attrs[1] - m1;
            cov += a * b;
            v0 += a * a;
            v1 += b * b;
        }
        let r01 = cov / (v0.sqrt() * v1.sqrt());
        assert!(r01 > 0.2, "expected shared-wealth correlation, got {r01}");
    }

    #[test]
    fn hotel_price_tracks_stars() {
        let data = hotel_like(5000, 6);
        // Average price of 5-star hotels must exceed 1-star.
        let avg = |star: f64| {
            let sel: Vec<f64> = data
                .iter()
                .filter(|r| (r.attrs[0] - star).abs() < 1e-9)
                .map(|r| r.attrs[1])
                .collect();
            sel.iter().sum::<f64>() / sel.len().max(1) as f64
        };
        assert!(avg(1.0) > avg(0.2) || avg(0.2) == 0.0);
        let hi = avg(1.0);
        let lo = avg(0.2);
        assert!(hi > lo, "5-star avg {hi} vs 1-star avg {lo}");
    }

    #[test]
    fn determinism() {
        assert_eq!(house_like(100, 1), house_like(100, 1));
        assert_eq!(hotel_like(100, 1), hotel_like(100, 1));
        assert_ne!(hotel_like(100, 1), hotel_like(100, 2));
    }
}
