//! Record-to-shard placement policies.
//!
//! Placement is a pure function of the record, so routing an update to
//! its owning shard never needs a directory: inserts and deletes carry
//! both the id and the attribute point, which is all either policy
//! reads.

use gir_geometry::vector::PointD;

/// How records are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Splitmix hash of the record id: uniform occupancy regardless of
    /// the data distribution, no spatial locality.
    Hash,
    /// Uniform bands over the first attribute: spatially local shards
    /// (a shard owns one slice of attribute space), occupancy follows
    /// the data distribution — the skewed-occupancy scenarios of
    /// `gir_datagen::partition` exist to stress exactly this.
    Grid,
}

impl Placement {
    /// Label used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Hash => "hash",
            Placement::Grid => "grid",
        }
    }

    /// The shard owning a record with this `id` and attribute point.
    pub fn shard_of(&self, id: u64, attrs: &PointD, shards: usize) -> usize {
        debug_assert!(shards >= 1);
        match self {
            Placement::Hash => {
                // splitmix64 final avalanche: low bits usable directly.
                let mut h = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((h ^ (h >> 31)) % shards as u64) as usize
            }
            Placement::Grid => grid_band(attrs[0], shards),
        }
    }
}

/// The grid band of a `[0,1]` coordinate: `⌊x·S⌋` clamped into range.
/// `gir_datagen::partition::grid_occupancy` mirrors this formula.
pub fn grid_band(x: f64, shards: usize) -> usize {
    ((x.clamp(0.0, 1.0) * shards as f64) as usize).min(shards - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_bands_partition_the_unit_interval() {
        assert_eq!(grid_band(0.0, 4), 0);
        assert_eq!(grid_band(0.249, 4), 0);
        assert_eq!(grid_band(0.25, 4), 1);
        assert_eq!(grid_band(0.999, 4), 3);
        assert_eq!(grid_band(1.0, 4), 3); // clamped, not out of range
        assert_eq!(grid_band(-0.5, 4), 0);
        assert_eq!(grid_band(7.0, 4), 3);
    }

    #[test]
    fn hash_placement_is_deterministic_and_spread() {
        let p = Placement::Hash;
        let attrs = PointD::new(vec![0.5, 0.5]);
        let mut counts = [0usize; 8];
        for id in 0..8000u64 {
            let s = p.shard_of(id, &attrs, 8);
            assert_eq!(s, p.shard_of(id, &attrs, 8));
            counts[s] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed hash occupancy {counts:?}");
        }
    }

    #[test]
    fn grid_placement_ignores_id() {
        let p = Placement::Grid;
        let a = PointD::new(vec![0.1, 0.9]);
        assert_eq!(p.shard_of(1, &a, 4), p.shard_of(999, &a, 4));
        assert_eq!(p.shard_of(1, &a, 4), 0);
    }
}
