//! # gir-shard
//!
//! Partitioned datasets with mergeable per-shard GIRs — the scale-out
//! step past the single R\*-tree every prior layer assumed.
//!
//! The GIR's Phase-2 structure is embarrassingly partitionable: the
//! region is an intersection of half-spaces, each induced by one
//! non-result record against the fixed pivot `p_k`, so per-partition
//! constraint systems intersect to the global region (see
//! `gir_core::sharded` for the execution plan and its soundness
//! argument). This crate provides the partitioned substrate and its
//! serving layer:
//!
//! * [`Placement`] — hash (uniform, id-keyed) and grid (spatially
//!   banded) record-to-shard policies; placement is a pure function of
//!   the record, so update routing needs no directory.
//! * [`ShardedDataset`] — S independent R\*-trees, each with its own
//!   `gir_core::PruneIndex`; queries merge per-shard BRS candidate
//!   frontiers into the global top-k and intersect per-shard Phase-2
//!   systems into one `GirRegion`; updates touch the owning shard only.
//! * [`ShardedGirServer`] — the `gir_serve` executor pattern over a
//!   sharded dataset: cache-probe first on the scoped worker pool,
//!   sharded compute-and-admit on miss, and an update pipeline whose
//!   facet repair stays **shard-local** ([`repair_region_sharded`]) —
//!   deleting a contributor of shard `s` re-sweeps tree `s` alone.
//!
//! Both region semantics are served: the order-sensitive GIR
//! ([`ShardedDataset::gir`]) and the order-insensitive GIR\* of §7.1
//! ([`ShardedDataset::gir_star`] — per-shard star systems against the
//! globally merged per-rank pivots), with cached GIR\* entries repaired
//! shard-locally too ([`repair_region_star_sharded`]).
//!
//! Equivalence to the single-tree oracle — same top-k, same region as
//! a point set, same reduced facet set — is pinned for S ∈ {1,2,4,8},
//! both placements, and random update interleavings by
//! `tests/proptest_shard.rs` (GIR) and `tests/proptest_star_shard.rs`
//! (GIR\*).

#![deny(missing_docs)]

pub mod dataset;
pub mod placement;
pub mod serve;

pub use dataset::ShardedDataset;
pub use placement::{grid_band, Placement};
pub use serve::{
    repair_region_sharded, repair_region_sharded_with, repair_region_star_sharded,
    repair_region_star_sharded_with, RepairSweeps, ShardedGirServer, ShardedServerConfig,
};

#[cfg(test)]
mod send_sync {
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shard_types_are_shareable() {
        assert_send_sync::<crate::ShardedDataset>();
        assert_send_sync::<crate::ShardedGirServer>();
    }
}
