//! Serving over a sharded dataset: the [`gir_serve::GirServer`]
//! executor pattern with [`ShardedDataset`] underneath.
//!
//! * **Queries** fan across the scoped worker pool exactly as in the
//!   single-tree server (cache-probe first, compute-and-admit on miss),
//!   with misses served by [`gir_core::gir_sharded`] — per-shard work
//!   over each shard's prune index, merged and intersected into one
//!   region.
//! * **Updates** route to the owning shard only: the tree mutation, the
//!   skyline/mirror repair, and the Phase-2 system maintenance all stay
//!   shard-local (non-owning shards merely purge systems *naming* the
//!   record). The cached-entry reconciliation then runs the usual
//!   classify → shrink → repair → evict pass, with the **repair sweep
//!   confined to the shards that lost a contributor**: a region
//!   produced by `gir_sharded` is the intersection of per-shard-exact
//!   systems, so deleting a contributor of shard `s` only invalidates
//!   the maximality of shard `s`'s system — the FP repair sweep runs
//!   over tree `s` alone, every other shard's constraints carry over
//!   verbatim ([`repair_region_sharded`]).
//!
//! The freshness argument is unchanged from `gir_serve`: queries hold
//! the dataset read lock, updates take the write lock and reconcile
//! the cache before releasing it.

use crate::dataset::ShardedDataset;
use crate::placement::Placement;
use gir_core::fp::fp_repair;
use gir_core::plan::{MissPath, PlanInputs, Planner, PlannerStats};
use gir_core::{
    fp_star_repair, CacheKey, GirEngine, GirError, GirOutput, GirRegion, Method, PruneIndexStats,
    RegionKind, RepairRequest,
};
use gir_geometry::hyperplane::{HalfSpace, Provenance};
use gir_geometry::vector::PointD;
use gir_query::{QueryVector, Record, ScoringFunction, TopKResult};
use gir_rtree::RTreeError;
use gir_serve::{
    compute_response, execute_batch, BatchResult, CacheStats, ShardedGirCache, TopKRequest,
    TopKResponse, Update, UpdateReport,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{PoisonError, RwLock};
use std::time::Instant;

/// Sharded-server configuration.
#[derive(Debug, Clone)]
pub struct ShardedServerConfig {
    /// Worker threads per batch (clamped to ≥ 1).
    pub threads: usize,
    /// Dataset shards (independent R\*-trees).
    pub data_shards: usize,
    /// Record-to-shard placement policy.
    pub placement: Placement,
    /// GIR-cache shards (rounded up to a power of two; unrelated to
    /// `data_shards` — the cache shards by query affinity, the dataset
    /// by record placement).
    pub cache_shards: usize,
    /// LRU capacity per cache shard.
    pub cache_capacity: usize,
    /// Phase-2 method for misses. Non-linear scoring functions fall
    /// back to [`Method::SkylinePruning`] automatically (§7.2).
    pub method: Method,
    /// Pins every planned miss to one [`MissPath`] (config-level twin
    /// of `GIR_FORCE_PATH`; this field wins when both are set). With
    /// more than one data shard only [`MissPath::Sharded`] is feasible
    /// — there is no single tree to dispatch the others against — so an
    /// infeasible force falls back to the sharded plan; at
    /// `data_shards: 1` every path is available.
    pub force_path: Option<MissPath>,
}

impl Default for ShardedServerConfig {
    fn default() -> Self {
        ShardedServerConfig {
            threads: std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(4)
                .min(8),
            data_shards: 4,
            placement: Placement::Hash,
            cache_shards: 16,
            cache_capacity: 32,
            method: Method::FacetPruning,
            force_path: None,
        }
    }
}

/// A concurrent GIR serving engine over a partitioned dataset.
pub struct ShardedGirServer {
    data: RwLock<ShardedDataset>,
    cache: ShardedGirCache,
    planner: Planner,
    scoring: ScoringFunction,
    cfg: ShardedServerConfig,
}

impl ShardedGirServer {
    /// Builds a server around an already-partitioned dataset.
    ///
    /// # Examples
    ///
    /// ```
    /// use gir_query::{Record, ScoringFunction};
    /// use gir_serve::TopKRequest;
    /// use gir_shard::{Placement, ShardedDataset, ShardedGirServer, ShardedServerConfig};
    ///
    /// // A small deterministic 3-d dataset, hash-partitioned 4 ways.
    /// let mut s = 0x5EEDu64;
    /// let mut next = move || {
    ///     s ^= s << 13;
    ///     s ^= s >> 7;
    ///     s ^= s << 17;
    ///     (s >> 11) as f64 / (1u64 << 53) as f64
    /// };
    /// let recs: Vec<Record> = (0..400)
    ///     .map(|i| Record::new(i, vec![next(), next(), next()]))
    ///     .collect();
    /// let data = ShardedDataset::build(3, &recs, 4, Placement::Hash).unwrap();
    ///
    /// let server = ShardedGirServer::new(
    ///     data,
    ///     ScoringFunction::linear(3),
    ///     ShardedServerConfig {
    ///         threads: 1,
    ///         ..ShardedServerConfig::default()
    ///     },
    /// );
    /// // Jittered repeats of one preference anchor: the first request
    /// // computes and caches, the rest fall inside its region.
    /// let reqs: Vec<TopKRequest> = (0..16)
    ///     .map(|i| TopKRequest::new(vec![0.6 + 0.0004 * (i % 5) as f64, 0.5, 0.7], 8))
    ///     .collect();
    /// let batch = server.run_batch(&reqs);
    /// assert_eq!(batch.responses.len(), 16);
    /// assert!(batch.stats.hits > 0);
    /// ```
    pub fn new(data: ShardedDataset, scoring: ScoringFunction, cfg: ShardedServerConfig) -> Self {
        assert_eq!(scoring.dim(), data.dim(), "scoring dimensionality mismatch");
        let cache = ShardedGirCache::new(cfg.cache_shards, cfg.cache_capacity);
        let planner = match cfg.force_path {
            Some(p) => Planner::with_forced(Some(p)),
            None => Planner::new(),
        };
        ShardedGirServer {
            data: RwLock::new(data),
            cache,
            planner,
            scoring,
            cfg,
        }
    }

    /// Partitions `records` per the config and builds the server.
    pub fn build(
        d: usize,
        records: &[Record],
        scoring: ScoringFunction,
        cfg: ShardedServerConfig,
    ) -> Result<Self, RTreeError> {
        let data = ShardedDataset::build(d, records, cfg.data_shards, cfg.placement)?;
        Ok(Self::new(data, scoring, cfg))
    }

    /// The scoring function requests are evaluated under.
    pub fn scoring(&self) -> &ScoringFunction {
        &self.scoring
    }

    /// The effective Phase-2 method (configured, or SP when the scoring
    /// function is non-linear — §7.2).
    pub fn method(&self) -> Method {
        if self.cfg.method.supports(&self.scoring) {
            self.cfg.method
        } else {
            Method::SkylinePruning
        }
    }

    /// Aggregated GIR-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-shard prune-index counters, in shard order.
    pub fn prune_stats(&self) -> Vec<PruneIndexStats> {
        let data = self.read_data();
        data.views().iter().map(|v| v.index.stats()).collect()
    }

    /// Live records per data shard.
    pub fn occupancy(&self) -> Vec<u64> {
        self.read_data().occupancy()
    }

    /// Total live records.
    pub fn num_records(&self) -> u64 {
        self.read_data().len()
    }

    /// A snapshot of every live record (takes the read lock).
    pub fn records_snapshot(&self) -> Result<Vec<Record>, RTreeError> {
        self.read_data().scan_all()
    }

    /// Consistent cut of the cache's per-shard maintenance counters
    /// (never observes a cache shard mid-batch; same contract as
    /// [`gir_serve::GirServer::maintenance_snapshot`]).
    pub fn maintenance_snapshot(&self) -> gir_obs::ScopesSnapshot {
        self.cache.maintenance_snapshot()
    }

    fn read_data(&self) -> std::sync::RwLockReadGuard<'_, ShardedDataset> {
        self.data.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Executes a batch of requests across the worker pool (the
    /// executor shared with [`gir_serve::GirServer`]): cache-probe
    /// first, sharded compute-and-admit on miss. Responses preserve
    /// request order.
    pub fn run_batch(&self, requests: &[TopKRequest]) -> BatchResult {
        let method = self.method();
        // Hold the read lock for the whole batch: updates apply between
        // batches, never inside one.
        let data = self.read_data();
        let data_ref: &ShardedDataset = &data;
        let work = requests
            .len()
            .saturating_mul(data_ref.len().max(1) as usize);
        let out = execute_batch(requests, work, self.cfg.threads, method.label(), |req| {
            self.serve_one(data_ref, req, method)
        });
        drop(data);
        out
    }

    fn serve_one(&self, data: &ShardedDataset, req: &TopKRequest, method: Method) -> TopKResponse {
        gir_serve::serve_traced(req, || {
            let t0 = Instant::now();
            let key = CacheKey::new(&req.weights, req.k, &self.scoring).kind(req.kind);
            let lookup_span = tracing::span!("cache_lookup");
            let found = self.cache.get(&key);
            drop(lookup_span);
            if let Some(records) = found {
                return TopKResponse {
                    ids: records.iter().map(|r| r.id).collect(),
                    from_cache: true,
                    latency_us: t0.elapsed().as_micros() as u64,
                    failed: false,
                    pages: 0,
                    error: None,
                    explain: None,
                };
            }
            let q = QueryVector::new(req.weights.coords().to_vec());
            let computed = self.serve_miss_planned(data, &q, req, method);
            compute_response(computed, t0, |out| {
                let _admit_span = tracing::span!("admit");
                self.cache.admit(&key, out.region, out.result);
            })
        })
    }

    /// One planned miss over the partitioned dataset. With `S > 1` the
    /// planner can only pick the sharded fan-out (the decision is still
    /// recorded — the EXPLAIN phase and `planner.*` counters stay
    /// uniform across server types); at `S = 1` the single shard is a
    /// plain tree + index pair, and the full cold / indexed / sharded
    /// choice opens up exactly as on [`gir_serve::GirServer`].
    fn serve_miss_planned(
        &self,
        data: &ShardedDataset,
        q: &QueryVector,
        req: &TopKRequest,
        method: Method,
    ) -> Result<GirOutput, GirError> {
        // Opened before input gathering so planning work lands inside
        // the `planner` phase (see `GirServer::serve_miss_planned`).
        let mut planner_span = tracing::span!("planner");
        let views = data.views();
        let skyline: usize = views.iter().map(|v| v.index.stats().skyline_size).sum();
        let built = views.iter().any(|v| v.index.is_built());
        let inputs = PlanInputs {
            n: data.len() as usize,
            d: self.scoring.dim(),
            method,
            kind: req.kind,
            skyline,
            index_built: built,
            shards: data.num_shards(),
        };
        let decision = self.planner.plan(&inputs);
        gir_serve::record_planner_phase(&mut planner_span, &decision);
        drop(planner_span);
        if decision.forced && decision.path == MissPath::IndexedRecompute {
            // Forced recompute isolates the cold-Phase-2 cost: drop
            // every shard's shared systems first (see GirServer).
            for v in &views {
                v.index.clear_phase2();
            }
        }
        let watch_reuse = decision.path != MissPath::Cold && method != Method::FullScan;
        let phase2_hits = |views: &[gir_core::ShardView<'_>]| -> u64 {
            views.iter().map(|v| v.index.phase2_hits()).sum()
        };
        let h0 = watch_reuse.then(|| phase2_hits(&views));
        let compute_span = tracing::span!(
            "compute",
            method = method.label(),
            path = decision.path.label()
        );
        let t0 = Instant::now();
        let computed = match (decision.path, req.kind) {
            (MissPath::Sharded, RegionKind::Gir) => data.gir(&self.scoring, q, req.k, method),
            (MissPath::Sharded, RegionKind::GirStar) => {
                data.gir_star(&self.scoring, q, req.k, method)
            }
            // Single-tree paths: only reachable at S = 1 (the planner
            // marks them infeasible otherwise), where shard 0 holds the
            // whole dataset.
            (path, kind) => {
                let engine = GirEngine::with_scoring(data.shard_tree(0), self.scoring.clone());
                match (path, kind) {
                    (MissPath::Cold, RegionKind::Gir) => engine.gir(q, req.k, method),
                    (MissPath::Cold, RegionKind::GirStar) => engine.gir_star(q, req.k, method),
                    (_, RegionKind::Gir) => engine.gir_indexed(q, req.k, method, views[0].index),
                    (_, RegionKind::GirStar) => {
                        engine.gir_star_indexed(q, req.k, method, views[0].index)
                    }
                }
            }
        };
        let actual_ns = t0.elapsed().as_nanos() as u64;
        drop(compute_span);
        let calibrate_span = tracing::span!("calibrate", actual_us = actual_ns as f64 / 1e3);
        let reused = h0.map(|h| phase2_hits(&views) > h);
        let outcome = self.planner.observe(&decision, actual_ns, reused);
        if tracing::enabled() {
            gir_serve::publish_planner_decision(&decision, actual_ns, outcome);
        }
        drop(calibrate_span);
        computed
    }

    /// Planner decision counters (per-path tallies, probes, forced
    /// dispatches, calibrator drift/refit activity).
    pub fn planner_stats(&self) -> PlannerStats {
        self.planner.stats()
    }

    /// The planner's forced-path override, if any (config field or
    /// `GIR_FORCE_PATH`).
    pub fn forced_path(&self) -> Option<MissPath> {
        self.planner.forced()
    }

    /// Applies a batch of updates under the dataset write lock and
    /// reconciles the cache before releasing it. Every delta goes to
    /// the owning shard only; cached entries are classified once per
    /// batch and repaired shard-locally ([`repair_region_sharded`]).
    pub fn apply_updates(&self, updates: &[Update]) -> Result<UpdateReport, RTreeError> {
        let mut data = self.data.write().unwrap_or_else(PoisonError::into_inner);
        let mut report = UpdateReport::default();
        let mut batch = gir_core::DeltaBatch::new();
        // Owner shards of every applied delete (by the delete's
        // recorded location) — the repair closure needs them to scope
        // its sweeps. A set per id: duplicate ids may be deleted at
        // locations owned by different shards within one batch.
        let mut removed_owner: HashMap<u64, BTreeSet<usize>> = HashMap::new();
        let mut failure: Option<RTreeError> = None;
        for u in updates {
            match u {
                Update::Insert(rec) => match data.insert(rec.clone()) {
                    Ok(()) => {
                        report.inserted += 1;
                        batch.record_insert(rec);
                    }
                    Err(e) => failure = Some(e),
                },
                Update::Delete { id, attrs } => match data.delete(*id, attrs) {
                    Ok(true) => {
                        report.deleted += 1;
                        removed_owner
                            .entry(*id)
                            .or_default()
                            .insert(data.shard_of(*id, attrs));
                        batch.record_delete_at(*id, attrs);
                    }
                    Ok(false) => report.missed_deletes += 1,
                    Err(e) => {
                        // The owning shard may have mutated its tree
                        // before the index error: record the delete so
                        // the cache still reconciles with it.
                        report.deleted += 1;
                        removed_owner
                            .entry(*id)
                            .or_default()
                            .insert(data.shard_of(*id, attrs));
                        batch.record_delete_at(*id, attrs);
                        failure = Some(e);
                    }
                },
            }
            if failure.is_some() {
                break;
            }
        }
        let data_ref: &ShardedDataset = &data;
        let outcome = self.cache.apply_batch(&batch, |req| {
            // FP repair needs linear scoring (§7.2); declining keeps
            // the entry sound but non-maximal.
            if !req.scoring.is_linear() {
                return None;
            }
            match req.kind {
                RegionKind::Gir => repair_region_sharded(data_ref, req, &removed_owner),
                RegionKind::GirStar => repair_region_star_sharded(data_ref, req, &removed_owner),
            }
        });
        report.evicted = outcome.evicted;
        report.repaired = outcome.repaired;
        report.shrunk = outcome.shrunk;
        report.untouched = outcome.untouched;
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// The durability hooks (`gir_serve::DurableServer` wraps this server
/// exactly as it wraps the single-tree one): the consistent cut takes
/// the dataset read lock — updates hold the write lock for apply +
/// cache sweep, so the cut always lands on a batch boundary — and
/// returns the records per shard.
impl gir_serve::RecoverableServer for ShardedGirServer {
    fn apply_updates(&self, updates: &[Update]) -> Result<UpdateReport, RTreeError> {
        ShardedGirServer::apply_updates(self, updates)
    }

    fn run_batch(&self, requests: &[TopKRequest]) -> BatchResult {
        ShardedGirServer::run_batch(self, requests)
    }

    fn consistent_cut(&self) -> Result<Vec<Vec<Record>>, RTreeError> {
        let data = self.read_data();
        debug_assert!(
            self.cache
                .maintenance_snapshot()
                .shards
                .iter()
                .all(|s| s.epoch % 2 == 0),
            "consistent cut observed a cache shard mid-batch"
        );
        data.shard_records()
    }
}

/// The sweep surface the shard-local repair algorithms run against.
///
/// [`repair_region_sharded_with`] and [`repair_region_star_sharded_with`]
/// only need four operations from the partitioned substrate: the shard
/// count, the pure record→shard placement, and the two FP sweeps over a
/// single shard's tree. [`ShardedDataset`] implements them in-process;
/// `gir-rpc`'s remote cluster implements them by shipping
/// `RepairSweep`/`RepairStarSweep` requests to the owning workers, so
/// both tiers share one repair algorithm (and therefore produce
/// bit-identical rebuilt regions).
pub trait RepairSweeps {
    /// Number of shards the dataset is partitioned into.
    fn num_shards(&self) -> usize;

    /// The shard owning `(id, attrs)` (pure placement function).
    fn shard_of(&self, id: u64, attrs: &PointD) -> usize;

    /// FP repair sweep pinned at the cached `p_k` over shard `s` alone,
    /// seeded with that shard's surviving contributors and pruned by
    /// the kept `interim` constraints. `None` declines the repair (the
    /// caller keeps the entry sound-but-non-maximal).
    fn fp_sweep(
        &self,
        shard: usize,
        scoring: &ScoringFunction,
        result: &TopKResult,
        interim: &[HalfSpace],
        seeds: &[Record],
    ) -> Option<Vec<HalfSpace>>;

    /// Root-seeded concurrent GIR\* sweep over shard `s` alone.
    fn fp_star_sweep(
        &self,
        shard: usize,
        scoring: &ScoringFunction,
        result: &TopKResult,
        seeds: &[Record],
    ) -> Option<Vec<HalfSpace>>;
}

impl RepairSweeps for ShardedDataset {
    fn num_shards(&self) -> usize {
        ShardedDataset::num_shards(self)
    }

    fn shard_of(&self, id: u64, attrs: &PointD) -> usize {
        ShardedDataset::shard_of(self, id, attrs)
    }

    fn fp_sweep(
        &self,
        shard: usize,
        scoring: &ScoringFunction,
        result: &TopKResult,
        interim: &[HalfSpace],
        seeds: &[Record],
    ) -> Option<Vec<HalfSpace>> {
        fp_repair(self.shard_tree(shard), scoring, result, interim, seeds)
            .ok()
            .map(|(hs, _stats)| hs)
    }

    fn fp_star_sweep(
        &self,
        shard: usize,
        scoring: &ScoringFunction,
        result: &TopKResult,
        seeds: &[Record],
    ) -> Option<Vec<HalfSpace>> {
        fp_star_repair(self.shard_tree(shard), scoring, result, seeds)
            .ok()
            .map(|(hs, _stats)| hs)
    }
}

/// Shard-local facet repair of one cached entry.
///
/// The entry's region was produced by [`gir_core::gir_sharded`]: its
/// non-result constraints are the union of **per-shard-exact** systems.
/// Deleting a contributor of shard `s` leaves every other shard's
/// system exact, so only shard `s` needs a sweep:
///
/// * ordering constraints carry over verbatim,
/// * every surviving non-result constraint carries over verbatim (each
///   names a live record, so it can never over-shrink; keeping them all
///   preserves the per-shard completeness the next repair relies on),
/// * for each shard that lost a contributor, an FP sweep pinned at the
///   cached `p_k` runs over that shard's tree alone, seeded with the
///   shard's surviving contributors and pruned by every kept constraint
///   — its output restores the shard system's maximality; constraints
///   for records already kept are deduplicated (same record + same
///   pivot ⇒ identical half-space).
///
/// `removed_owner` maps each deleted id to every shard that applied a
/// delete of it (recorded from the deletes' locations when the batch
/// applied — a set, since duplicate ids can be deleted at locations in
/// different shards). Declines (`None`) when an id is unknown or a
/// GIR\* constraint appears — the caller then keeps the entry
/// sound-but-non-maximal.
pub fn repair_region_sharded(
    data: &ShardedDataset,
    req: &RepairRequest<'_>,
    removed_owner: &HashMap<u64, BTreeSet<usize>>,
) -> Option<GirRegion> {
    repair_region_sharded_with(data, req, removed_owner)
}

/// [`repair_region_sharded`] over any [`RepairSweeps`] surface — the
/// in-process dataset and the RPC cluster share this exact algorithm.
pub fn repair_region_sharded_with<S: RepairSweeps + ?Sized>(
    data: &S,
    req: &RepairRequest<'_>,
    removed_owner: &HashMap<u64, BTreeSet<usize>>,
) -> Option<GirRegion> {
    let scoring = req.scoring;
    debug_assert!(scoring.is_linear());
    let pk_t = scoring.transform_point(&req.result.kth().attrs);

    let mut affected: BTreeSet<usize> = BTreeSet::new();
    for id in req.removed {
        affected.extend(removed_owner.get(id)?.iter().copied());
    }

    let mut ordering: Vec<HalfSpace> = Vec::new();
    let mut kept: Vec<HalfSpace> = Vec::new();
    let mut kept_ids: HashSet<u64> = HashSet::new();
    let mut seeds_by_shard: Vec<Vec<Record>> = vec![Vec::new(); data.num_shards()];
    for h in req.region.halfspaces.iter().chain(req.shrinks) {
        match h.provenance {
            Provenance::Ordering { .. } => ordering.push(h.clone()),
            // GirRegion::new re-appends the box.
            Provenance::QueryBox { .. } => {}
            // GIR* conditions are pinned at a rank pivot, not p_k — not
            // produced by the sharded path; decline defensively.
            Provenance::StarNonResult { .. } => return None,
            Provenance::NonResult { record_id } => {
                if req.removed.contains(&record_id) || !kept_ids.insert(record_id) {
                    continue;
                }
                // Reconstruct the record from its constraint normal
                // (`g(p) = g(p_k) + normal`; linear scoring makes the
                // transformed point the attribute vector itself) and
                // bucket it as a sweep seed for its owning shard. A
                // boundary-exact grid reconstruction landing the seed in
                // a neighbour bucket costs sweep tightness, never
                // soundness: kept constraints are never dropped.
                let rec = Record::new(record_id, pk_t.add(&h.normal));
                let owner = data.shard_of(record_id, &rec.attrs);
                seeds_by_shard[owner].push(rec);
                kept.push(h.clone());
            }
        }
    }

    let mut interim: Vec<HalfSpace> = ordering.clone();
    interim.extend(kept.iter().cloned());
    interim.extend(HalfSpace::full_query_box(req.region.d));

    let mut rebuilt = ordering;
    rebuilt.append(&mut kept);
    for s in affected {
        let swept = data.fp_sweep(s, scoring, req.result, &interim, &seeds_by_shard[s])?;
        for h in swept {
            let fresh = match h.provenance {
                Provenance::NonResult { record_id } => kept_ids.insert(record_id),
                _ => true,
            };
            if fresh {
                rebuilt.push(h);
            }
        }
    }
    Some(GirRegion::new(
        req.region.d,
        req.region.query.clone(),
        rebuilt,
    ))
}

/// Shard-local facet repair of one cached **GIR\*** entry — the star
/// companion of [`repair_region_sharded`].
///
/// A region produced by [`gir_core::sharded::gir_star_sharded`] is the
/// intersection of per-shard-exact star systems, so deleting a
/// contributor of shard `s` only breaks the maximality of shard `s`'s
/// system. Every surviving `StarNonResult` constraint carries over
/// verbatim (it names a live non-result record against a valid `R⁻`
/// pivot — a genuine condition that can over-describe but never
/// over-shrink the true region), and each one reconstructs its record
/// from the constraint normal (`g(p) = g(p_rank) + normal`; the rank in
/// the provenance names the pivot) as a sweep seed bucketed by owning
/// shard. For each shard that lost a contributor, a root-seeded
/// concurrent star sweep ([`fp_star_repair`]) over that shard's tree
/// alone restores its system; swept conditions already kept are
/// deduplicated by `(rank, record)` pair. As in the order-sensitive
/// variant, a boundary-exact grid reconstruction landing a seed in a
/// neighbour bucket costs sweep tightness, never soundness.
///
/// Declines (`None`) when a deleted id has no recorded owner, a rank
/// exceeds the cached result, or an order-sensitive constraint appears
/// — the caller then keeps the entry sound-but-non-maximal.
pub fn repair_region_star_sharded(
    data: &ShardedDataset,
    req: &RepairRequest<'_>,
    removed_owner: &HashMap<u64, BTreeSet<usize>>,
) -> Option<GirRegion> {
    repair_region_star_sharded_with(data, req, removed_owner)
}

/// [`repair_region_star_sharded`] over any [`RepairSweeps`] surface —
/// the star companion of [`repair_region_sharded_with`].
pub fn repair_region_star_sharded_with<S: RepairSweeps + ?Sized>(
    data: &S,
    req: &RepairRequest<'_>,
    removed_owner: &HashMap<u64, BTreeSet<usize>>,
) -> Option<GirRegion> {
    let scoring = req.scoring;
    debug_assert!(scoring.is_linear());

    let mut affected: BTreeSet<usize> = BTreeSet::new();
    for id in req.removed {
        affected.extend(removed_owner.get(id)?.iter().copied());
    }

    let mut kept: Vec<HalfSpace> = Vec::new();
    let mut kept_pairs: HashSet<(usize, u64)> = HashSet::new();
    let mut seeded: HashSet<u64> = HashSet::new();
    let mut seeds_by_shard: Vec<Vec<Record>> = vec![Vec::new(); data.num_shards()];
    for h in req.region.halfspaces.iter().chain(req.shrinks) {
        match h.provenance {
            // GirRegion::new re-appends the box.
            Provenance::QueryBox { .. } => {}
            Provenance::StarNonResult { rank, record_id } => {
                if rank >= req.result.len() {
                    return None;
                }
                if req.removed.contains(&record_id) || !kept_pairs.insert((rank, record_id)) {
                    continue;
                }
                if seeded.insert(record_id) {
                    let pivot_t = scoring.transform_point(&req.result.ranked[rank].0.attrs);
                    let rec = Record::new(record_id, pivot_t.add(&h.normal));
                    let owner = data.shard_of(record_id, &rec.attrs);
                    seeds_by_shard[owner].push(rec);
                }
                kept.push(h.clone());
            }
            // Order-sensitive constraints are never produced by the
            // GIR* path; decline defensively.
            Provenance::Ordering { .. } | Provenance::NonResult { .. } => return None,
        }
    }

    let mut rebuilt = kept;
    for s in affected {
        let swept = data.fp_star_sweep(s, scoring, req.result, &seeds_by_shard[s])?;
        for h in swept {
            let fresh = match h.provenance {
                Provenance::StarNonResult { rank, record_id } => {
                    kept_pairs.insert((rank, record_id))
                }
                _ => true,
            };
            if fresh {
                rebuilt.push(h);
            }
        }
    }
    Some(GirRegion::new(
        req.region.d,
        req.region.query.clone(),
        rebuilt,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gir_query::naive_topk;

    fn records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Record::new(i as u64, (0..d).map(|_| next()).collect::<Vec<_>>()))
            .collect()
    }

    fn jittered(count: usize, k: usize) -> Vec<TopKRequest> {
        (0..count)
            .map(|i| {
                let j = 0.0005 * (i % 11) as f64;
                TopKRequest::new(vec![0.55 + j, 0.6 - j, 0.45 + j / 2.0], k)
            })
            .collect()
    }

    #[test]
    fn sharded_batches_match_naive_and_hit_cache() {
        let data = records(1500, 3, 0x81);
        for placement in [Placement::Hash, Placement::Grid] {
            let server = ShardedGirServer::build(
                3,
                &data,
                ScoringFunction::linear(3),
                ShardedServerConfig {
                    threads: 2,
                    data_shards: 4,
                    placement,
                    ..ShardedServerConfig::default()
                },
            )
            .unwrap();
            let reqs = jittered(100, 8);
            let batch = server.run_batch(&reqs);
            assert!(batch.stats.hits > 0, "jittered repeats should hit");
            for (req, resp) in reqs.iter().zip(&batch.responses) {
                assert!(!resp.failed);
                let truth = naive_topk(&data, server.scoring(), &req.weights, req.k);
                assert_eq!(resp.ids, truth.ids(), "{placement:?} at {:?}", req.weights);
            }
        }
    }

    #[test]
    fn updates_route_to_owning_shard_and_stay_fresh() {
        let mut mirror = records(1200, 3, 0x82);
        let server = ShardedGirServer::build(
            3,
            &mirror,
            ScoringFunction::linear(3),
            ShardedServerConfig {
                threads: 1,
                data_shards: 4,
                ..ShardedServerConfig::default()
            },
        )
        .unwrap();
        let reqs = jittered(40, 6);
        let _ = server.run_batch(&reqs);
        assert!(server.cache_stats().entries > 0);
        let occupancy_before = server.occupancy();

        // A dominating insert must enter every subsequent top-k...
        let champ = Record::new(9_999_999, vec![0.99, 0.99, 0.99]);
        mirror.push(champ.clone());
        let report = server
            .apply_updates(&[Update::Insert(champ.clone())])
            .unwrap();
        assert_eq!(report.inserted, 1);
        // ... and only one shard's occupancy moved.
        let occupancy_after = server.occupancy();
        let moved = occupancy_before
            .iter()
            .zip(&occupancy_after)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(moved, 1, "insert touched more than the owning shard");

        let batch = server.run_batch(&reqs);
        for (req, resp) in reqs.iter().zip(&batch.responses) {
            let truth = naive_topk(&mirror, server.scoring(), &req.weights, req.k);
            assert_eq!(resp.ids, truth.ids(), "stale after insert");
            assert_eq!(resp.ids[0], champ.id);
        }

        // Delete it again; containing entries must drop.
        let report = server
            .apply_updates(&[Update::Delete {
                id: champ.id,
                attrs: champ.attrs.clone(),
            }])
            .unwrap();
        mirror.pop();
        assert_eq!(report.deleted, 1);
        assert!(report.evicted > 0);
        let batch = server.run_batch(&reqs);
        for (req, resp) in reqs.iter().zip(&batch.responses) {
            let truth = naive_topk(&mirror, server.scoring(), &req.weights, req.k);
            assert_eq!(resp.ids, truth.ids(), "stale after delete");
        }
    }

    #[test]
    fn contributor_delete_repairs_shard_locally_with_fresh_hits() {
        // Delete facet contributors under churn and verify repaired
        // entries keep serving *fresh* hits (the shard-local repair is
        // exercised through the report's `repaired` counter).
        let mut mirror = records(900, 3, 0x83);
        let server = ShardedGirServer::build(
            3,
            &mirror,
            ScoringFunction::linear(3),
            ShardedServerConfig {
                threads: 1,
                data_shards: 4,
                ..ShardedServerConfig::default()
            },
        )
        .unwrap();
        let reqs = jittered(30, 5);
        let _ = server.run_batch(&reqs);

        // The GIR of the anchor query names its facet contributors
        // (non-result records by provenance): deleting one triggers the
        // NeedsRepair path instead of an eviction. Recompute per round
        // on an equivalent dataset built from the server's snapshot.
        let contributor_of = |mirror: &[Record]| -> Record {
            let data =
                ShardedDataset::build(3, mirror, 4, Placement::Hash).expect("shadow dataset");
            let q = QueryVector::new(reqs[0].weights.coords().to_vec());
            let out = data
                .gir(&ScoringFunction::linear(3), &q, 5, Method::FacetPruning)
                .expect("shadow gir");
            let result_ids = out.result.ids();
            let id = out
                .region
                .contributor_ids()
                .find(|id| !result_ids.contains(id))
                .expect("non-trivial GIR has non-result contributors");
            mirror.iter().find(|r| r.id == id).unwrap().clone()
        };

        let mut repaired_total = 0usize;
        let mut checked_hits = 0usize;
        for round in 0..10usize {
            // Churn: one competitive insert + delete a facet
            // contributor. Distinct insert attrs per round: BRS and the
            // naive oracle break exact score ties differently (id desc
            // vs id asc).
            let jitter = round as f64 * 3e-4;
            let hot = Record::new(
                10_000_000 + round as u64,
                vec![0.66 + jitter, 0.64 - jitter, 0.68],
            );
            let victim = contributor_of(&mirror);
            mirror.retain(|r| r.id != victim.id);
            mirror.push(hot.clone());
            let report = server
                .apply_updates(&[
                    Update::Insert(hot),
                    Update::Delete {
                        id: victim.id,
                        attrs: victim.attrs.clone(),
                    },
                ])
                .unwrap();
            repaired_total += report.repaired;

            let batch = server.run_batch(&reqs);
            for (req, resp) in reqs.iter().zip(&batch.responses) {
                let truth = naive_topk(&mirror, server.scoring(), &req.weights, req.k);
                assert_eq!(
                    resp.ids,
                    truth.ids(),
                    "round {round}: stale response (from_cache={}, w={:?})",
                    resp.from_cache,
                    req.weights
                );
                if resp.from_cache {
                    checked_hits += 1;
                }
            }
        }
        assert!(
            repaired_total > 0,
            "churn never exercised shard-local repair"
        );
        assert!(checked_hits > 0, "no cache hits survived the churn");
    }

    #[test]
    fn star_requests_serve_fresh_compositions_and_repair_shard_locally() {
        let sorted = |ids: &[u64]| {
            let mut v = ids.to_vec();
            v.sort_unstable();
            v
        };
        let mut mirror = records(900, 3, 0x85);
        let server = ShardedGirServer::build(
            3,
            &mirror,
            ScoringFunction::linear(3),
            ShardedServerConfig {
                threads: 1,
                data_shards: 4,
                ..ShardedServerConfig::default()
            },
        )
        .unwrap();
        let reqs: Vec<TopKRequest> = (0..30)
            .map(|i| {
                let j = 0.0005 * (i % 11) as f64;
                TopKRequest::new(vec![0.55 + j, 0.6 - j, 0.45 + j / 2.0], 5)
                    .kind(RegionKind::GirStar)
            })
            .collect();
        let batch = server.run_batch(&reqs);
        assert!(batch.stats.hits > 0, "jittered star repeats should hit");

        // Find a GIR* facet contributor of the anchor query via a
        // shadow dataset, delete it (NeedsRepair on the star entry),
        // and keep verifying set-freshness across rounds of churn.
        let star_contributor_of = |mirror: &[Record]| -> Record {
            let data =
                ShardedDataset::build(3, mirror, 4, Placement::Hash).expect("shadow dataset");
            let q = QueryVector::new(reqs[0].weights.coords().to_vec());
            let out = data
                .gir_star(&ScoringFunction::linear(3), &q, 5, Method::FacetPruning)
                .expect("shadow gir*");
            let result_ids = out.result.ids();
            let id = out
                .region
                .contributor_ids()
                .find(|id| !result_ids.contains(id))
                .expect("non-trivial GIR* has non-result contributors");
            mirror.iter().find(|r| r.id == id).unwrap().clone()
        };

        let mut repaired_total = 0usize;
        let mut star_hits = 0usize;
        for round in 0..8usize {
            let jitter = round as f64 * 3e-4;
            let hot = Record::new(
                11_000_000 + round as u64,
                vec![0.66 + jitter, 0.64 - jitter, 0.68],
            );
            let victim = star_contributor_of(&mirror);
            mirror.retain(|r| r.id != victim.id);
            mirror.push(hot.clone());
            let report = server
                .apply_updates(&[
                    Update::Insert(hot),
                    Update::Delete {
                        id: victim.id,
                        attrs: victim.attrs.clone(),
                    },
                ])
                .unwrap();
            repaired_total += report.repaired;

            let batch = server.run_batch(&reqs);
            for (req, resp) in reqs.iter().zip(&batch.responses) {
                let truth = naive_topk(&mirror, server.scoring(), &req.weights, req.k);
                assert_eq!(
                    sorted(&resp.ids),
                    sorted(&truth.ids()),
                    "round {round}: stale star composition (from_cache={})",
                    resp.from_cache
                );
                if resp.from_cache {
                    star_hits += 1;
                }
            }
        }
        assert!(
            repaired_total > 0,
            "churn never exercised the shard-local star repair"
        );
        assert!(star_hits > 0, "no star cache hits survived the churn");
    }

    #[test]
    fn nonlinear_scoring_falls_back_to_sp() {
        let data = records(400, 4, 0x84);
        let server = ShardedGirServer::build(
            4,
            &data,
            ScoringFunction::mixed4(),
            ShardedServerConfig {
                threads: 2,
                data_shards: 2,
                method: Method::FacetPruning,
                ..ShardedServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(server.method(), Method::SkylinePruning);
        let reqs = vec![TopKRequest::new(vec![0.5, 0.5, 0.5, 0.5], 5)];
        let batch = server.run_batch(&reqs);
        let truth = naive_topk(&data, server.scoring(), &reqs[0].weights, 5);
        assert_eq!(batch.responses[0].ids, truth.ids());
        assert_eq!(batch.stats.method, "SP");
    }
}
