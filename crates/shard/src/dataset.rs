//! A partitioned dataset: S independent R\*-trees with per-shard prune
//! indexes, queried as one.

use crate::placement::Placement;
use gir_core::{
    gir_sharded, gir_star_sharded, topk_sharded, GirError, GirOutput, Method, PruneIndex, ShardView,
};
use gir_geometry::vector::PointD;
use gir_query::{QueryVector, ScoringFunction, TopKResult};
use gir_rtree::{RTree, RTreeError, Record};
use gir_storage::{MemPageStore, PageStore, PAGE_SIZE};
use std::sync::Arc;

/// One shard: an R\*-tree over its own page store, plus the shard's
/// prune index (skyline, hull, decoded mirror, shared Phase-2 systems —
/// all scoped to the shard's records).
struct DataShard {
    tree: RTree,
    index: PruneIndex,
}

/// A dataset partitioned across S independent R\*-trees.
///
/// Queries merge the per-shard BRS frontiers into the global top-k and
/// intersect per-shard Phase-2 systems into one region
/// ([`gir_core::sharded`]); updates touch only the owning shard —
/// placement is a pure function of the record, so routing needs no
/// directory, and a delta's skyline/mirror repair stays shard-local
/// (non-owning shards only drop Phase-2 systems that *name* the
/// record, a map sweep with no I/O).
pub struct ShardedDataset {
    d: usize,
    placement: Placement,
    shards: Vec<DataShard>,
}

impl ShardedDataset {
    /// Partitions `records` across `shards` trees (each over its own
    /// in-memory page store). Empty partitions are legal — a grid
    /// placement over skewed data routinely produces them — and
    /// contribute nothing to queries.
    pub fn build(
        d: usize,
        records: &[Record],
        shards: usize,
        placement: Placement,
    ) -> Result<ShardedDataset, RTreeError> {
        let shards = shards.max(1);
        let mut parts: Vec<Vec<Record>> = vec![Vec::new(); shards];
        for rec in records {
            parts[placement.shard_of(rec.id, &rec.attrs, shards)].push(rec.clone());
        }
        let shards = parts
            .into_iter()
            .map(|part| {
                let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
                let tree = if part.is_empty() {
                    RTree::new(store, d)?
                } else {
                    RTree::bulk_load(store, &part)?
                };
                Ok(DataShard {
                    tree,
                    index: PruneIndex::new(),
                })
            })
            .collect::<Result<Vec<_>, RTreeError>>()?;
        Ok(ShardedDataset {
            d,
            placement,
            shards,
        })
    }

    /// Attribute dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The placement policy.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Total live records across all shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.tree.len()).sum()
    }

    /// True when no shard holds a record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live records per shard (the occupancy histogram; skewed under
    /// grid placement on skewed data).
    pub fn occupancy(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.tree.len()).collect()
    }

    /// The shard owning `(id, attrs)` under this dataset's placement.
    pub fn shard_of(&self, id: u64, attrs: &PointD) -> usize {
        self.placement.shard_of(id, attrs, self.shards.len())
    }

    /// The `i`-th shard's tree (for shard-local repair sweeps).
    pub fn shard_tree(&self, i: usize) -> &RTree {
        &self.shards[i].tree
    }

    /// Borrowed views over every shard, in shard order — the input to
    /// [`gir_core::gir_sharded`].
    pub fn views(&self) -> Vec<ShardView<'_>> {
        self.shards
            .iter()
            .map(|s| ShardView {
                tree: &s.tree,
                index: &s.index,
            })
            .collect()
    }

    /// Inserts a record into its owning shard and absorbs it into that
    /// shard's prune index. Other shards are untouched: a newcomer only
    /// ever contributes constraints to its own shard's Phase-2 systems.
    pub fn insert(&mut self, rec: Record) -> Result<(), RTreeError> {
        let owner = self.shard_of(rec.id, &rec.attrs);
        self.shards[owner].tree.insert(rec.clone())?;
        self.shards[owner].index.on_insert(&rec);
        Ok(())
    }

    /// Deletes a record from its owning shard; returns whether it was
    /// found. The owning shard's index runs its (localized) skyline
    /// repair; every other shard only purges Phase-2 systems naming the
    /// record — see [`PruneIndex::purge_record`].
    pub fn delete(&mut self, id: u64, attrs: &PointD) -> Result<bool, RTreeError> {
        let owner = self.shard_of(id, attrs);
        if !self.shards[owner].tree.delete(id, attrs)? {
            return Ok(false);
        }
        let (tree, index) = (&self.shards[owner].tree, &self.shards[owner].index);
        let owner_err = index.on_delete(tree, id, attrs).err();
        for (i, s) in self.shards.iter().enumerate() {
            if i != owner {
                s.index.purge_record(id);
            }
        }
        match owner_err {
            Some(e) => Err(e),
            None => Ok(true),
        }
    }

    /// Global top-k by merging per-shard BRS candidate frontiers.
    pub fn topk(
        &self,
        scoring: &ScoringFunction,
        q: &QueryVector,
        k: usize,
    ) -> Result<TopKResult, GirError> {
        topk_sharded(&self.views(), scoring, q, k)
    }

    /// Global top-k plus its GIR: per-shard Phase 2 against the global
    /// pivot, intersected into one region (see [`gir_core::sharded`]).
    pub fn gir(
        &self,
        scoring: &ScoringFunction,
        q: &QueryVector,
        k: usize,
        method: Method,
    ) -> Result<GirOutput, GirError> {
        gir_sharded(&self.views(), scoring, q, k, method)
    }

    /// Global top-k plus its order-insensitive GIR\* (§7.1): per-shard
    /// star systems against the globally merged per-rank pivots,
    /// intersected into one region (see
    /// [`gir_core::sharded::gir_star_sharded`]).
    pub fn gir_star(
        &self,
        scoring: &ScoringFunction,
        q: &QueryVector,
        k: usize,
        method: Method,
    ) -> Result<GirOutput, GirError> {
        gir_star_sharded(&self.views(), scoring, q, k, method)
    }

    /// Every live record, concatenated across shards (verification /
    /// debugging; order is shard-major, not insertion order).
    pub fn scan_all(&self) -> Result<Vec<Record>, RTreeError> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.tree.scan_all()?);
        }
        Ok(out)
    }

    /// Per-shard record lists, in shard order — the shape a durable
    /// snapshot persists ([`gir_serve::RecoverableServer`]). Placement
    /// is a pure function of `(id, attrs, num_shards)`, so rebuilding
    /// from the flattened lists reproduces this exact partition.
    pub fn shard_records(&self) -> Result<Vec<Vec<Record>>, RTreeError> {
        self.shards.iter().map(|s| s.tree.scan_all()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gir_query::naive_topk;

    fn records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Record::new(i as u64, (0..d).map(|_| next()).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn build_routes_every_record_to_its_owner() {
        let recs = records(500, 3, 0x71);
        for placement in [Placement::Hash, Placement::Grid] {
            let data = ShardedDataset::build(3, &recs, 4, placement).unwrap();
            assert_eq!(data.len(), 500);
            assert_eq!(data.occupancy().iter().sum::<u64>(), 500);
            for rec in data.scan_all().unwrap() {
                let owner = data.shard_of(rec.id, &rec.attrs);
                assert!(data
                    .shard_tree(owner)
                    .scan_all()
                    .unwrap()
                    .iter()
                    .any(|r| r.id == rec.id));
            }
        }
    }

    #[test]
    fn topk_matches_naive_after_updates() {
        let mut recs = records(800, 3, 0x72);
        let mut data = ShardedDataset::build(3, &recs, 4, Placement::Hash).unwrap();
        let f = ScoringFunction::linear(3);
        let q = QueryVector::new(vec![0.7, 0.4, 0.6]);

        // Mutate: one competitive insert, one delete.
        let champ = Record::new(9_000_001, vec![0.98, 0.97, 0.99]);
        data.insert(champ.clone()).unwrap();
        recs.push(champ);
        let victim = recs.remove(17);
        assert!(data.delete(victim.id, &victim.attrs).unwrap());
        assert!(
            !data.delete(victim.id, &victim.attrs).unwrap(),
            "double delete"
        );

        let got = data.topk(&f, &q, 12).unwrap();
        let expect = naive_topk(&recs, &f, &q.weights, 12);
        assert_eq!(got.ids(), expect.ids());
    }

    #[test]
    fn grid_placement_owns_disjoint_bands() {
        let recs = records(300, 2, 0x73);
        let data = ShardedDataset::build(2, &recs, 4, Placement::Grid).unwrap();
        for (i, _) in data.occupancy().iter().enumerate() {
            for rec in data.shard_tree(i).scan_all().unwrap() {
                assert_eq!(crate::placement::grid_band(rec.attrs[0], 4), i);
            }
        }
    }

    #[test]
    fn empty_dataset_yields_empty_result_error() {
        let data = ShardedDataset::build(2, &[], 4, Placement::Hash).unwrap();
        assert!(data.is_empty());
        let f = ScoringFunction::linear(2);
        let q = QueryVector::new(vec![0.5, 0.5]);
        assert!(matches!(data.topk(&f, &q, 3), Err(GirError::EmptyResult)));
    }
}
