//! Interactive projection of a query point onto a region boundary.
//!
//! Paper §7.3 (Figure 13b): for each axis `i`, shoot a ray from `q` in the
//! `±e_i` directions and find where it exits the region. The resulting
//! per-axis intervals are exactly the *local immutable regions* (LIRs) of
//! \[24\] — the paper notes LIRs derive trivially from the GIR this way.

use crate::hyperplane::HalfSpace;
use crate::vector::PointD;
use crate::EPS;

/// Per-axis interval `[lo, hi]` around `q` within the region; `q[i]` always
/// lies inside its own interval.
pub fn axis_projections(halfspaces: &[HalfSpace], q: &PointD) -> Vec<(f64, f64)> {
    let d = q.dim();
    let mut out = Vec::with_capacity(d);
    for i in 0..d {
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for h in halfspaces {
            let ni = h.normal[i];
            let slack = h.slack(q);
            if ni > EPS {
                hi = hi.min(q[i] + slack / ni);
            } else if ni < -EPS {
                lo = lo.max(q[i] + slack / ni);
            } else if slack < -EPS {
                // Constraint independent of axis i is violated at q: the
                // ray never enters the region. Callers pass q inside the
                // region so this is defensive.
                return vec![(q[i], q[i]); d];
            }
        }
        // The caller's half-spaces include the query box, but clamp anyway.
        out.push((lo.max(0.0).min(q[i]), hi.min(1.0).max(q[i])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Provenance;

    fn hs(n: &[f64], b: f64) -> HalfSpace {
        HalfSpace {
            normal: PointD::from(n),
            offset: b,
            provenance: Provenance::NonResult { record_id: 0 },
        }
    }

    #[test]
    fn box_only_projects_to_unit_interval() {
        let cons = HalfSpace::full_query_box(3);
        let q = PointD::new(vec![0.2, 0.5, 0.9]);
        let pr = axis_projections(&cons, &q);
        for (lo, hi) in pr {
            assert!((lo - 0.0).abs() < 1e-9 && (hi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn wedge_projections_match_geometry() {
        // y ≤ 2x and y ≥ x/2, q = (0.6, 0.5).
        // Along x at y = 0.5: need x ≥ 0.25 (from y ≤ 2x) and x ≤ 1.0
        // (from y ≥ x/2: x ≤ 2y = 1.0).
        // Along y at x = 0.6: 0.3 ≤ y ≤ 1.0 (y ≤ 1.2 clamps to box).
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[-2.0, 1.0], 0.0));
        cons.push(hs(&[0.5, -1.0], 0.0));
        let q = PointD::new(vec![0.6, 0.5]);
        let pr = axis_projections(&cons, &q);
        assert!((pr[0].0 - 0.25).abs() < 1e-9, "x lo {}", pr[0].0);
        assert!((pr[0].1 - 1.0).abs() < 1e-9, "x hi {}", pr[0].1);
        assert!((pr[1].0 - 0.3).abs() < 1e-9, "y lo {}", pr[1].0);
        assert!((pr[1].1 - 1.0).abs() < 1e-9, "y hi {}", pr[1].1);
    }

    #[test]
    fn interval_contains_query_coordinate() {
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[1.0, 1.0], 1.0));
        let q = PointD::new(vec![0.3, 0.3]);
        for (i, (lo, hi)) in axis_projections(&cons, &q).iter().enumerate() {
            assert!(*lo <= q[i] && q[i] <= *hi);
        }
    }

    #[test]
    fn projection_endpoints_are_on_boundary_or_box() {
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[1.0, 1.0], 1.0));
        let q = PointD::new(vec![0.3, 0.3]);
        let pr = axis_projections(&cons, &q);
        // x hi: 0.7 (hits x + y = 1).
        assert!((pr[0].1 - 0.7).abs() < 1e-9);
        assert!((pr[0].0 - 0.0).abs() < 1e-9);
    }
}
