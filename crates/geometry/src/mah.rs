//! Maximum axis-parallel hyper-rectangle (MAH) inside a convex region.
//!
//! Paper §7.3: the first GIR visualization computes the maximum-volume
//! axis-parallel hyper-rectangle that contains the query vector and lies
//! inside the GIR, then projects its sides onto each axis to draw fixed
//! slide-bar bounds (Figure 1a / 13a). The paper points to bichromatic-
//! rectangle algorithms [2, 16]; we implement a deterministic coordinate-
//! ascent heuristic that is exact when each axis is bounded by a single
//! constraint and a documented approximation otherwise.
//!
//! Key fact making this cheap: a box `[lo, hi]` lies inside `{n·x ≤ b}`
//! iff its *worst corner* does, and the worst corner picks `hi_i` where
//! `n_i > 0` and `lo_i` where `n_i < 0` — a linear condition in `(lo, hi)`.

use crate::hyperplane::HalfSpace;
use crate::vector::PointD;
use crate::EPS;

/// An axis-parallel box `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisRect {
    /// Lower corner.
    pub lo: PointD,
    /// Upper corner.
    pub hi: PointD,
}

impl AxisRect {
    /// Box volume.
    pub fn volume(&self) -> f64 {
        self.lo
            .coords()
            .iter()
            .zip(self.hi.coords().iter())
            .map(|(l, h)| (h - l).max(0.0))
            .product()
    }

    /// True when `x` lies in the box.
    pub fn contains(&self, x: &PointD) -> bool {
        (0..x.dim()).all(|i| self.lo[i] - EPS <= x[i] && x[i] <= self.hi[i] + EPS)
    }
}

/// Grows a maximal axis-parallel box around `q` inside the region
/// `{x : h.normal·x ≤ h.offset}` (callers include the `[0,1]^d` box
/// constraints). `q` must satisfy all half-spaces.
///
/// Two phases:
///
/// 1. **Inscribed cube**: expand uniformly around `q` by the largest `t`
///    such that `[q − t, q + t]` stays inside — for a half-space with
///    normal `n` and slack `s` at `q`, the worst corner allows
///    `t ≤ s / ‖n‖₁`. This gives every axis breathing room before any
///    greedy step can consume shared slack.
/// 2. **Greedy maximality**: round-robin passes expand every face by the
///    most the other faces currently allow, until no face moves.
///
/// The result is always a maximal (inclusion-wise) box containing `q`;
/// global volume optimality is only guaranteed when constraints don't
/// couple axes (see module docs).
pub fn max_axis_rect(halfspaces: &[HalfSpace], q: &PointD) -> AxisRect {
    let d = q.dim();
    debug_assert!(
        halfspaces.iter().all(|h| h.contains(q, EPS)),
        "seed point must be inside the region"
    );

    // Phase 1: largest inscribed cube around q.
    let mut t = f64::INFINITY;
    for h in halfspaces {
        let l1: f64 = h.normal.coords().iter().map(|v| v.abs()).sum();
        if l1 > EPS {
            t = t.min(h.slack(q).max(0.0) / l1);
        }
    }
    if !t.is_finite() {
        t = 0.0;
    }
    let mut lo: Vec<f64> = q.coords().iter().map(|&c| c - t).collect();
    let mut hi: Vec<f64> = q.coords().iter().map(|&c| c + t).collect();

    // For a candidate growth of face (i, upward?) the binding value is
    //   hi_i ≤ (b − Σ_{j≠i} worst_j) / n_i          when n_i > 0
    //   lo_i ≥ (b − Σ_{j≠i} worst_j) / n_i          when n_i < 0
    // where worst_j = n_j > 0 ? n_j·hi_j : n_j·lo_j.
    let mut pass = 0usize;
    loop {
        let mut moved = false;
        for step in 0..2 * d {
            // Alternate sweep direction across passes to reduce order bias.
            let idx = if pass.is_multiple_of(2) {
                step
            } else {
                2 * d - 1 - step
            };
            let (i, upward) = (idx / 2, idx % 2 == 0);
            let mut bound = if upward {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
            for h in halfspaces {
                let ni = h.normal[i];
                if (upward && ni <= EPS) || (!upward && ni >= -EPS) {
                    continue;
                }
                let mut rest = 0.0;
                for j in 0..d {
                    if j == i {
                        continue;
                    }
                    let nj = h.normal[j];
                    rest += if nj > 0.0 { nj * hi[j] } else { nj * lo[j] };
                }
                let limit = (h.offset - rest) / ni;
                if upward {
                    bound = bound.min(limit);
                } else {
                    bound = bound.max(limit);
                }
            }
            if upward && bound > hi[i] + EPS {
                hi[i] = bound;
                moved = true;
            } else if !upward && bound < lo[i] - EPS {
                lo[i] = bound;
                moved = true;
            }
        }
        pass += 1;
        if !moved || pass > 64 {
            break;
        }
    }
    AxisRect {
        lo: PointD::from(lo),
        hi: PointD::from(hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Provenance;

    fn hs(n: &[f64], b: f64) -> HalfSpace {
        HalfSpace {
            normal: PointD::from(n),
            offset: b,
            provenance: Provenance::NonResult { record_id: 0 },
        }
    }

    #[test]
    fn box_region_fills_entirely() {
        let cons = HalfSpace::full_query_box(2);
        let q = PointD::new(vec![0.3, 0.8]);
        let r = max_axis_rect(&cons, &q);
        assert!((r.volume() - 1.0).abs() < 1e-6, "vol {}", r.volume());
        assert!(r.contains(&q));
    }

    #[test]
    fn mah_inside_region_and_contains_q() {
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[-2.0, 1.0], 0.0)); // y ≤ 2x
        cons.push(hs(&[0.5, -1.0], 0.0)); // y ≥ x/2
        let q = PointD::new(vec![0.6, 0.5]);
        let r = max_axis_rect(&cons, &q);
        assert!(r.contains(&q));
        // All four corners satisfy all constraints.
        for cx in [r.lo[0], r.hi[0]] {
            for cy in [r.lo[1], r.hi[1]] {
                let c = PointD::new(vec![cx, cy]);
                for h in &cons {
                    assert!(h.contains(&c, 1e-7), "corner {c:?} escapes region");
                }
            }
        }
        assert!(r.volume() > 0.01, "degenerate MAH");
    }

    #[test]
    fn mah_is_maximal() {
        // Growing any face further must violate some constraint.
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[1.0, 1.0], 1.2));
        let q = PointD::new(vec![0.4, 0.4]);
        let r = max_axis_rect(&cons, &q);
        let d = 2;
        for i in 0..d {
            for upward in [true, false] {
                let mut lo = r.lo.clone();
                let mut hi = r.hi.clone();
                if upward {
                    hi[i] += 1e-3;
                } else {
                    lo[i] -= 1e-3;
                }
                // The grown box must leave the region (some worst corner
                // violates a constraint) or the unit box.
                let violated = cons.iter().any(|h| {
                    let worst: f64 = (0..d)
                        .map(|j| {
                            let nj = h.normal[j];
                            if nj > 0.0 {
                                nj * hi[j]
                            } else {
                                nj * lo[j]
                            }
                        })
                        .sum();
                    worst > h.offset + 1e-9
                });
                assert!(violated, "face ({i},{upward}) could still grow");
            }
        }
    }

    #[test]
    fn degenerate_region_returns_point_box() {
        // q pinned by equality-like constraints: box stays a point on that
        // axis.
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[1.0, 0.0], 0.5));
        cons.push(hs(&[-1.0, 0.0], -0.5));
        let q = PointD::new(vec![0.5, 0.5]);
        let r = max_axis_rect(&cons, &q);
        assert!((r.hi[0] - r.lo[0]).abs() < 1e-9);
        assert!(r.hi[1] - r.lo[1] > 0.9);
    }
}
