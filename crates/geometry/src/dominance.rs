//! Pareto dominance and in-memory skyline computation.
//!
//! Dominance is the pruning workhorse of the paper: record `p` dominates
//! `p'` when `p` is no smaller on every dimension and larger on at least
//! one (§5.1). Under any monotone scoring function `S(p,q) ≥ S(p',q)`, so a
//! dominated record can never bound the GIR before its dominator does.

use crate::vector::PointD;
use crate::EPS;

/// Returns true when `a` dominates `b`: `a_i ≥ b_i` on every dimension and
/// `a_i > b_i` on at least one (larger-is-better convention, paper §5.1).
#[inline]
pub fn dominates(a: &PointD, b: &PointD) -> bool {
    debug_assert_eq!(a.dim(), b.dim());
    let mut strictly = false;
    for (x, y) in a.coords().iter().zip(b.coords().iter()) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// [`dominates`] over raw coordinate slices — the kernel form used by
/// columnar scans that never materialize a `PointD` per probe.
#[inline]
pub fn dominates_slice(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Returns true when `a` is strictly larger than `b` on *every* dimension.
#[inline]
pub fn strictly_dominates(a: &PointD, b: &PointD) -> bool {
    debug_assert_eq!(a.dim(), b.dim());
    a.coords()
        .iter()
        .zip(b.coords().iter())
        .all(|(x, y)| *x > y + EPS)
}

/// Computes the skyline (maxima set) of `points`, returning indices into
/// the input slice. `O(n^2)` worst case; intended for in-memory candidate
/// sets (e.g. the records set `T` retained from BRS), not whole datasets —
/// disk-resident skylines use the BBS algorithm in `gir-query`.
pub fn skyline_indices(points: &[PointD]) -> Vec<usize> {
    // Pre-sorting by decreasing coordinate sum makes dominators appear
    // before dominated records, so the incremental filter below never has
    // to remove a previously accepted member.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| {
        let si: f64 = points[i].coords().iter().sum();
        let sj: f64 = points[j].coords().iter().sum();
        sj.partial_cmp(&si).expect("non-NaN coordinates")
    });

    let mut sky: Vec<usize> = Vec::new();
    'next: for &i in &order {
        for &s in &sky {
            if dominates(&points[s], &points[i]) {
                continue 'next;
            }
        }
        sky.push(i);
    }
    sky.sort_unstable();
    sky
}

/// Incremental skyline maintenance over streamed points.
///
/// Used by BBS-style traversals: each candidate is inserted unless
/// dominated, and dominated members are evicted when a new dominator
/// arrives.
#[derive(Debug, Default, Clone)]
pub struct SkylineSet<T> {
    entries: Vec<(PointD, T)>,
}

impl<T> SkylineSet<T> {
    /// Creates an empty skyline.
    pub fn new() -> Self {
        SkylineSet {
            entries: Vec::new(),
        }
    }

    /// Number of current skyline members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the skyline has no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns true when `p` is dominated by a current member.
    pub fn dominated(&self, p: &PointD) -> bool {
        self.entries.iter().any(|(m, _)| dominates(m, p))
    }

    /// [`SkylineSet::dominated`] over a raw coordinate slice.
    pub fn dominated_slice(&self, p: &[f64]) -> bool {
        self.entries
            .iter()
            .any(|(m, _)| dominates_slice(m.coords(), p))
    }

    /// Inserts `p` unless dominated; evicts members `p` dominates.
    /// Returns true when the point was inserted.
    pub fn insert(&mut self, p: PointD, payload: T) -> bool {
        if self.dominated(&p) {
            return false;
        }
        self.entries.retain(|(m, _)| !dominates(&p, m));
        self.entries.push((p, payload));
        true
    }

    /// Iterates over members and payloads.
    pub fn iter(&self) -> impl Iterator<Item = (&PointD, &T)> {
        self.entries.iter().map(|(p, t)| (p, t))
    }

    /// Consumes the skyline, yielding members and payloads.
    pub fn into_entries(self) -> Vec<(PointD, T)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[f64]) -> PointD {
        PointD::from(v)
    }

    #[test]
    fn dominance_basic() {
        assert!(dominates(&p(&[0.5, 0.5]), &p(&[0.4, 0.5])));
        assert!(!dominates(&p(&[0.5, 0.5]), &p(&[0.5, 0.5])));
        assert!(!dominates(&p(&[0.5, 0.4]), &p(&[0.4, 0.5])));
        assert!(strictly_dominates(&p(&[0.6, 0.6]), &p(&[0.4, 0.5])));
        assert!(!strictly_dominates(&p(&[0.6, 0.5]), &p(&[0.4, 0.5])));
    }

    #[test]
    fn skyline_of_figure4_layout() {
        // A staircase plus dominated interior points.
        let pts = vec![
            p(&[0.9, 0.1]),
            p(&[0.7, 0.4]),
            p(&[0.5, 0.6]),
            p(&[0.2, 0.9]),
            p(&[0.4, 0.3]), // dominated by (0.5,0.6)
            p(&[0.1, 0.1]), // dominated by everything
        ];
        let sky = skyline_indices(&pts);
        assert_eq!(sky, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skyline_single_point() {
        let pts = vec![p(&[0.5, 0.5, 0.5])];
        assert_eq!(skyline_indices(&pts), vec![0]);
    }

    #[test]
    fn skyline_duplicates_keep_one_copy_each() {
        // Equal points do not dominate each other, so both remain.
        let pts = vec![p(&[0.5, 0.5]), p(&[0.5, 0.5])];
        assert_eq!(skyline_indices(&pts).len(), 2);
    }

    #[test]
    fn skyline_set_eviction() {
        let mut s: SkylineSet<u32> = SkylineSet::new();
        assert!(s.insert(p(&[0.4, 0.4]), 1));
        assert!(s.insert(p(&[0.2, 0.6]), 2));
        assert_eq!(s.len(), 2);
        // Dominates the first member: evicts it.
        assert!(s.insert(p(&[0.5, 0.5]), 3));
        assert_eq!(s.len(), 2);
        assert!(s.dominated(&p(&[0.3, 0.3])));
        // Dominated candidate is rejected.
        assert!(!s.insert(p(&[0.1, 0.1]), 4));
    }

    #[test]
    fn skyline_matches_naive_filter() {
        // Cross-check skyline_indices against a direct double loop.
        let mut pts = Vec::new();
        let mut seed = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            let mut c = Vec::new();
            for _ in 0..3 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                c.push((seed >> 11) as f64 / (1u64 << 53) as f64);
            }
            pts.push(PointD::from(c));
        }
        let fast = skyline_indices(&pts);
        let naive: Vec<usize> = (0..pts.len())
            .filter(|&i| !(0..pts.len()).any(|j| j != i && dominates(&pts[j], &pts[i])))
            .collect();
        assert_eq!(fast, naive);
    }
}
