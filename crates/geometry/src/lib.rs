//! # gir-geometry
//!
//! d-dimensional computational geometry primitives used by the GIR
//! (global immutable region) reproduction:
//!
//! * [`vector`] — dense `f64` point/vector arithmetic for dimensions 2–8,
//! * [`linalg`] — small dense linear solves and null-space extraction,
//! * [`dominance`] — Pareto dominance tests and in-memory skylines,
//! * [`hyperplane`] — hyperplanes and half-spaces,
//! * [`hull`] — incremental (beneath-and-beyond / Clarkson-style) convex
//!   hulls in arbitrary dimension, plus a fast 2-d monotone chain,
//! * [`lp`] — Seidel's randomized incremental linear programming for
//!   low-dimensional feasibility, extrema and Chebyshev centers,
//! * [`halfspace`] — half-space intersection via point/hyperplane duality
//!   (vertex enumeration and redundancy elimination),
//! * [`polytope`] — V-representation polytopes and exact volumes,
//! * [`volume`] — exact and Monte-Carlo volume of H-represented regions,
//! * [`mah`] — maximum axis-parallel hyper-rectangle inside a convex region,
//! * [`projection`] — axis-parallel projections of a point onto a region
//!   boundary (the paper's "interactive projection" visualization, §7.3).
//!
//! All tolerances are centralized in [`EPS`]; the library works on
//! normalized data in `[0,1]^d`, so a single absolute epsilon is adequate.

pub mod dominance;
pub mod halfspace;
pub mod hull;
pub mod hyperplane;
pub mod linalg;
pub mod lp;
pub mod mah;
pub mod polytope;
pub mod projection;
pub mod vector;
pub mod volume;

pub use dominance::{dominates, dominates_slice, skyline_indices, strictly_dominates};
pub use halfspace::{intersect_halfspaces, HalfspaceIntersection};
pub use hull::{ConvexHull, Facet, HullError};
pub use hyperplane::{HalfSpace, Hyperplane};
pub use lp::{chebyshev_center, maximize, ConsView, LpResult, LpScratch, LpStatus};
pub use mah::max_axis_rect;
pub use polytope::Polytope;
pub use projection::axis_projections;
pub use vector::PointD;

/// Absolute numeric tolerance used across the crate.
///
/// Data and query spaces are normalized to `[0,1]^d` (paper §3.1), so all
/// coordinates, normals (unit length) and offsets live in a narrow numeric
/// range and an absolute epsilon is appropriate.
pub const EPS: f64 = 1e-9;

/// A looser tolerance for accumulating-error contexts (volumes, vertex
/// dedup after a dual transform).
pub const LOOSE_EPS: f64 = 1e-7;
