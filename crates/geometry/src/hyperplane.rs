//! Hyperplanes and half-spaces in `R^d`.
//!
//! Every GIR condition `(a − b) · q' ≥ 0` (paper Definition 1) is the
//! half-space whose bounding hyperplane passes through the origin with
//! normal `a − b`; the query-space box `[0,1]^d` contributes axis-parallel
//! half-spaces. Both are represented uniformly here as `normal · x ≤ offset`.

use crate::linalg;
use crate::vector::PointD;
use crate::EPS;
use serde::{Deserialize, Serialize};

/// A hyperplane `normal · x = offset` with unit-ish normal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hyperplane {
    /// Plane normal (not necessarily unit length, but never zero).
    pub normal: PointD,
    /// Plane offset: the plane is `{x : normal · x = offset}`.
    pub offset: f64,
}

impl Hyperplane {
    /// Builds the hyperplane through `d` affinely independent points,
    /// or `None` when the points are affinely dependent.
    ///
    /// The normal orientation is arbitrary; use [`Hyperplane::oriented_away_from`]
    /// to fix it.
    pub fn through_points(points: &[PointD]) -> Option<Hyperplane> {
        let d = points.first()?.dim();
        if points.len() != d {
            return None;
        }
        if d == 1 {
            return Some(Hyperplane {
                normal: PointD::new(vec![1.0]),
                offset: points[0][0],
            });
        }
        let rows: Vec<Vec<f64>> = points[1..]
            .iter()
            .map(|p| p.sub(&points[0]).coords().to_vec())
            .collect();
        let n = linalg::null_space_1(&rows)?;
        let normal = PointD::from(n);
        let offset = normal.dot(&points[0]);
        Some(Hyperplane { normal, offset })
    }

    /// Signed distance-like evaluation: positive when `x` is on the
    /// normal side of the plane.
    #[inline]
    pub fn eval(&self, x: &PointD) -> f64 {
        self.normal.dot(x) - self.offset
    }

    /// Returns a copy whose normal points away from `p` (i.e. `eval(p) ≤ 0`).
    /// Returns `None` when `p` lies on the plane (within [`EPS`]), in which
    /// case the orientation is ambiguous.
    pub fn oriented_away_from(&self, p: &PointD) -> Option<Hyperplane> {
        let e = self.eval(p);
        if e.abs() < EPS {
            None
        } else if e > 0.0 {
            Some(Hyperplane {
                normal: self.normal.scale(-1.0),
                offset: -self.offset,
            })
        } else {
            Some(self.clone())
        }
    }
}

/// Provenance of a GIR half-space: which condition of Definition 1 (or the
/// query-space box) generated it. Carrying provenance is what lets the
/// system report the *result perturbation* at each GIR boundary facet
/// (paper §3.2): crossing an `Ordering` facet swaps two result records;
/// crossing a `NonResult` facet promotes that record into position `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// `S(p_i, q') ≥ S(p_{i+1}, q')` — result records `i` and `i+1`
    /// (0-based rank of the higher one). Crossing it reorders them.
    Ordering { rank: usize },
    /// `S(p_k, q') ≥ S(p, q')` — non-result record `id` overtakes the k-th
    /// result record when the query crosses this facet.
    NonResult { record_id: u64 },
    /// `S(p_i, q') ≥ S(p, q')` for order-insensitive GIR* (paper §7.1):
    /// non-result record `record_id` overtakes result member of `rank`.
    StarNonResult { rank: usize, record_id: u64 },
    /// Query-space boundary `0 ≤ w_dim` (lower) or `w_dim ≤ 1` (upper).
    QueryBox { dim: usize, upper: bool },
}

/// A closed half-space `normal · x ≤ offset`, tagged with the GIR condition
/// that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalfSpace {
    /// Outward normal: points *out* of the feasible side.
    pub normal: PointD,
    /// Offset; feasible side is `normal · x ≤ offset`.
    pub offset: f64,
    /// The GIR condition this half-space encodes.
    pub provenance: Provenance,
}

impl HalfSpace {
    /// The half-space `{q' : (winner - loser) · q' ≥ 0}` expressed in the
    /// canonical `normal · x ≤ offset` form (normal = loser − winner,
    /// offset = 0). This is the score-order condition of Definition 1.
    pub fn score_order(winner: &PointD, loser: &PointD, provenance: Provenance) -> HalfSpace {
        HalfSpace {
            normal: loser.sub(winner),
            offset: 0.0,
            provenance,
        }
    }

    /// Query-box constraint for dimension `dim`: `w_dim ≤ 1` when `upper`,
    /// `-w_dim ≤ 0` otherwise.
    pub fn query_box(d: usize, dim: usize, upper: bool) -> HalfSpace {
        let mut n = vec![0.0; d];
        n[dim] = if upper { 1.0 } else { -1.0 };
        HalfSpace {
            normal: PointD::from(n),
            offset: if upper { 1.0 } else { 0.0 },
            provenance: Provenance::QueryBox { dim, upper },
        }
    }

    /// All `2d` box constraints of the query space `[0,1]^d`.
    pub fn full_query_box(d: usize) -> Vec<HalfSpace> {
        (0..d)
            .flat_map(|dim| {
                [
                    HalfSpace::query_box(d, dim, false),
                    HalfSpace::query_box(d, dim, true),
                ]
            })
            .collect()
    }

    /// Slack at `x`: `offset − normal · x` (non-negative inside).
    #[inline]
    pub fn slack(&self, x: &PointD) -> f64 {
        self.offset - self.normal.dot(x)
    }

    /// True when `x` satisfies the half-space within `tol`.
    #[inline]
    pub fn contains(&self, x: &PointD, tol: f64) -> bool {
        self.slack(x) >= -tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_through_2d_points() {
        let pts = [PointD::new(vec![1.0, 0.0]), PointD::new(vec![0.0, 1.0])];
        let h = Hyperplane::through_points(&pts).unwrap();
        // x + y = 1 (up to sign/scale of unit normal).
        assert!(h.eval(&PointD::new(vec![0.5, 0.5])).abs() < 1e-9);
        assert!(h.eval(&PointD::new(vec![0.0, 0.0])).abs() > 0.5);
    }

    #[test]
    fn plane_through_degenerate_points_is_none() {
        let pts = [PointD::new(vec![0.5, 0.5]), PointD::new(vec![0.5, 0.5])];
        assert!(Hyperplane::through_points(&pts).is_none());
    }

    #[test]
    fn orientation_away_from_point() {
        let pts = [PointD::new(vec![1.0, 0.0]), PointD::new(vec![0.0, 1.0])];
        let h = Hyperplane::through_points(&pts).unwrap();
        let origin = PointD::zeros(2);
        let o = h.oriented_away_from(&origin).unwrap();
        assert!(o.eval(&origin) < 0.0);
        assert!(o.eval(&PointD::new(vec![1.0, 1.0])) > 0.0);
        // A point on the plane cannot orient it.
        assert!(h.oriented_away_from(&PointD::new(vec![0.5, 0.5])).is_none());
    }

    #[test]
    fn score_order_halfspace_sides() {
        // winner (0.54,0.5), loser (0.5,0.48) — Figure 3(a) rows p1, p2:
        // the half-plane is 0.04 w1 + 0.02 w2 ≥ 0.
        let w = PointD::new(vec![0.54, 0.5]);
        let l = PointD::new(vec![0.5, 0.48]);
        let hs = HalfSpace::score_order(&w, &l, Provenance::Ordering { rank: 0 });
        // Any positive query satisfies it.
        assert!(hs.contains(&PointD::new(vec![0.6, 0.5]), 0.0));
        // A direction favoring the loser violates it.
        assert!(!hs.contains(&PointD::new(vec![-1.0, -1.0]), 1e-12));
    }

    #[test]
    fn query_box_halfspaces() {
        let lo = HalfSpace::query_box(3, 1, false);
        let hi = HalfSpace::query_box(3, 1, true);
        let inside = PointD::new(vec![0.5, 0.5, 0.5]);
        let below = PointD::new(vec![0.5, -0.1, 0.5]);
        let above = PointD::new(vec![0.5, 1.1, 0.5]);
        assert!(lo.contains(&inside, 0.0) && hi.contains(&inside, 0.0));
        assert!(!lo.contains(&below, 1e-12));
        assert!(!hi.contains(&above, 1e-12));
        assert_eq!(HalfSpace::full_query_box(3).len(), 6);
    }

    #[test]
    fn slack_is_linear() {
        let hs = HalfSpace::query_box(2, 0, true); // x ≤ 1
        assert!((hs.slack(&PointD::new(vec![0.2, 0.9])) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn plane_through_3d_points() {
        let pts = [
            PointD::new(vec![1.0, 0.0, 0.0]),
            PointD::new(vec![0.0, 1.0, 0.0]),
            PointD::new(vec![0.0, 0.0, 1.0]),
        ];
        let h = Hyperplane::through_points(&pts).unwrap();
        for p in &pts {
            assert!(h.eval(p).abs() < 1e-9);
        }
    }
}
