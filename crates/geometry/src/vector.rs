//! Dense `f64` points/vectors of runtime dimension.
//!
//! The paper targets low-dimensional data (`d` between 2 and 8, Table 2),
//! but `d` is a runtime parameter of every experiment, so points carry their
//! dimension dynamically. A boxed slice keeps the type two words wide.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A point (or direction vector) in `R^d`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct PointD(Box<[f64]>);

impl PointD {
    /// Creates a point from raw coordinates.
    pub fn new(coords: impl Into<Box<[f64]>>) -> Self {
        PointD(coords.into())
    }

    /// The origin of `R^d`.
    pub fn zeros(d: usize) -> Self {
        PointD(vec![0.0; d].into())
    }

    /// A point with every coordinate set to `v`.
    pub fn splat(d: usize, v: f64) -> Self {
        PointD(vec![v; d].into())
    }

    /// The `i`-th standard basis vector of `R^d`.
    pub fn basis(d: usize, i: usize) -> Self {
        let mut v = vec![0.0; d];
        v[i] = 1.0;
        PointD(v.into())
    }

    /// Dimension of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.0
    }

    /// Mutable coordinates.
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Dot product `self · other`.
    #[inline]
    pub fn dot(&self, other: &PointD) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// Dot product against a raw slice.
    #[inline]
    pub fn dot_slice(&self, other: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), other.len());
        self.0.iter().zip(other.iter()).map(|(a, b)| a * b).sum()
    }

    /// Component-wise difference `self - other`.
    pub fn sub(&self, other: &PointD) -> PointD {
        debug_assert_eq!(self.dim(), other.dim());
        PointD(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }

    /// Component-wise sum `self + other`.
    pub fn add(&self, other: &PointD) -> PointD {
        debug_assert_eq!(self.dim(), other.dim());
        PointD(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Scalar multiple `self * s`.
    pub fn scale(&self, s: f64) -> PointD {
        PointD(self.0.iter().map(|a| a * s).collect())
    }

    /// `self + other * s`, fused to avoid an intermediate allocation.
    pub fn add_scaled(&self, other: &PointD, s: f64) -> PointD {
        debug_assert_eq!(self.dim(), other.dim());
        PointD(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a + b * s)
                .collect(),
        )
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist_sq(&self, other: &PointD) -> f64 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Returns a unit-length copy, or `None` if the norm is (near) zero.
    pub fn normalized(&self) -> Option<PointD> {
        let n = self.norm();
        if n < crate::EPS {
            None
        } else {
            Some(self.scale(1.0 / n))
        }
    }

    /// Centroid of a non-empty set of points.
    pub fn centroid<'a>(points: impl IntoIterator<Item = &'a PointD>) -> PointD {
        let mut it = points.into_iter();
        let first = it.next().expect("centroid of empty set");
        let mut acc = first.clone();
        let mut count = 1usize;
        for p in it {
            for (a, b) in acc.0.iter_mut().zip(p.0.iter()) {
                *a += *b;
            }
            count += 1;
        }
        acc.scale(1.0 / count as f64)
    }

    /// The projection of `self` onto coordinate axis `i`: a point that is
    /// zero everywhere except coordinate `i` (paper §6.2 / footnote 6).
    pub fn axis_projection(&self, i: usize) -> PointD {
        let mut v = vec![0.0; self.dim()];
        v[i] = self.0[i];
        PointD(v.into())
    }

    /// True when every coordinate differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &PointD, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .0
                .iter()
                .zip(other.0.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<usize> for PointD {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for PointD {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl fmt::Debug for PointD {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for PointD {
    fn from(v: Vec<f64>) -> Self {
        PointD(v.into())
    }
}

impl From<&[f64]> for PointD {
    fn from(v: &[f64]) -> Self {
        PointD(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let a = PointD::new(vec![3.0, 4.0]);
        let b = PointD::new(vec![1.0, 0.0]);
        assert_eq!(a.dot(&b), 3.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn sub_add_scale() {
        let a = PointD::new(vec![1.0, 2.0, 3.0]);
        let b = PointD::new(vec![0.5, 0.5, 0.5]);
        assert_eq!(a.sub(&b).coords(), &[0.5, 1.5, 2.5]);
        assert_eq!(a.add(&b).coords(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.scale(2.0).coords(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scaled(&b, 2.0).coords(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn normalized_unit_length() {
        let a = PointD::new(vec![2.0, 0.0, 0.0]);
        let n = a.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        assert!(PointD::zeros(3).normalized().is_none());
    }

    #[test]
    fn centroid_of_triangle() {
        let pts = [
            PointD::new(vec![0.0, 0.0]),
            PointD::new(vec![3.0, 0.0]),
            PointD::new(vec![0.0, 3.0]),
        ];
        let c = PointD::centroid(pts.iter());
        assert!(c.approx_eq(&PointD::new(vec![1.0, 1.0]), 1e-12));
    }

    #[test]
    fn axis_projection_zeroes_other_dims() {
        let p = PointD::new(vec![0.3, 0.7, 0.9]);
        let pr = p.axis_projection(1);
        assert_eq!(pr.coords(), &[0.0, 0.7, 0.0]);
    }

    #[test]
    fn basis_vectors() {
        let e1 = PointD::basis(3, 1);
        assert_eq!(e1.coords(), &[0.0, 1.0, 0.0]);
        assert_eq!(e1.dim(), 3);
    }

    #[test]
    fn dist_sq_matches_norm_of_difference() {
        let a = PointD::new(vec![1.0, 2.0]);
        let b = PointD::new(vec![4.0, 6.0]);
        assert_eq!(a.dist_sq(&b), 25.0);
    }
}
