//! Small dense linear algebra: Gaussian elimination for `d ≤ 8` systems.
//!
//! The hull and half-space code only ever solves systems whose size is the
//! data dimensionality, so simple partial-pivoting elimination on a
//! row-major `Vec<Vec<f64>>` is both adequate and easy to audit.

use crate::EPS;

/// Solves `A x = b` for square `A` (row-major). Returns `None` when `A` is
/// singular to within [`EPS`].
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    debug_assert!(a.iter().all(|row| row.len() == n) && b.len() == n);
    // Augmented matrix.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b.iter())
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .expect("non-NaN pivots")
        })?;
        if m[pivot][col].abs() < EPS {
            return None;
        }
        m.swap(col, pivot);
        let inv = 1.0 / m[col][col];
        for row in 0..n {
            if row != col && m[row][col] != 0.0 {
                let f = m[row][col] * inv;
                // Indexing two rows of `m` at once: an iterator over one
                // row would alias the other borrow.
                #[allow(clippy::needless_range_loop)]
                for k in col..=n {
                    let v = m[col][k];
                    m[row][k] -= f * v;
                }
            }
        }
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// Returns one unit vector spanning the null space of an `(n-1) × n`
/// row-major matrix of full row rank, or `None` when the rows are linearly
/// dependent (rank-deficient input).
///
/// This is the hyperplane-normal computation: the normal of the hyperplane
/// through `d` points is the null space of the `(d-1) × d` edge matrix.
pub fn null_space_1(rows: &[Vec<f64>]) -> Option<Vec<f64>> {
    let n = rows.first().map_or(0, |r| r.len());
    debug_assert!(rows.len() + 1 == n, "expected (n-1) x n matrix");
    let mut m: Vec<Vec<f64>> = rows.to_vec();
    let r = rows.len();
    // Track which column each elimination step pivots on; the leftover
    // column is the free variable.
    let mut pivot_col = vec![usize::MAX; r];
    let mut used = vec![false; n];
    for row in 0..r {
        // Find the largest available pivot in this row among unused columns.
        let col = (0..n)
            .filter(|&c| !used[c])
            .max_by(|&i, &j| {
                m[row][i]
                    .abs()
                    .partial_cmp(&m[row][j].abs())
                    .expect("non-NaN")
            })
            .expect("column available");
        if m[row][col].abs() < EPS {
            return None; // rank deficient
        }
        used[col] = true;
        pivot_col[row] = col;
        let inv = 1.0 / m[row][col];
        for other in 0..r {
            if other != row && m[other][col] != 0.0 {
                let f = m[other][col] * inv;
                // Indexing two rows of `m` at once: an iterator over one
                // row would alias the other borrow.
                #[allow(clippy::needless_range_loop)]
                for k in 0..n {
                    let v = m[row][k];
                    m[other][k] -= f * v;
                }
            }
        }
    }
    let free = (0..n).find(|&c| !used[c]).expect("one free column");
    // Back-substitute with the free variable set to 1.
    let mut x = vec![0.0; n];
    x[free] = 1.0;
    for row in 0..r {
        let c = pivot_col[row];
        x[c] = -m[row][free] / m[row][c];
    }
    // Normalize.
    let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm < EPS {
        return None;
    }
    for v in x.iter_mut() {
        *v /= norm;
    }
    Some(x)
}

/// Determinant of a small square row-major matrix (used for simplex volumes).
pub fn determinant(a: &[Vec<f64>]) -> f64 {
    let n = a.len();
    let mut m = a.to_vec();
    let mut det = 1.0;
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("non-NaN")
            })
            .expect("non-empty");
        if m[pivot][col].abs() < 1e-300 {
            return 0.0;
        }
        if pivot != col {
            m.swap(col, pivot);
            det = -det;
        }
        det *= m[col][col];
        let inv = 1.0 / m[col][col];
        for row in col + 1..n {
            let f = m[row][col] * inv;
            if f != 0.0 {
                // Indexing two rows of `m` at once: an iterator over one
                // row would alias the other borrow.
                #[allow(clippy::needless_range_loop)]
                for k in col..n {
                    let v = m[col][k];
                    m[row][k] -= f * v;
                }
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn null_space_of_plane_edges() {
        // Edges of the plane x + y + z = 1 through (1,0,0),(0,1,0),(0,0,1).
        let rows = vec![vec![-1.0, 1.0, 0.0], vec![-1.0, 0.0, 1.0]];
        let n = null_space_1(&rows).unwrap();
        // Normal must be parallel to (1,1,1)/sqrt(3).
        let s = 1.0 / 3f64.sqrt();
        let same = (n[0] - s).abs() < 1e-9 && (n[1] - s).abs() < 1e-9 && (n[2] - s).abs() < 1e-9;
        let flipped = (n[0] + s).abs() < 1e-9 && (n[1] + s).abs() < 1e-9 && (n[2] + s).abs() < 1e-9;
        assert!(same || flipped, "got {n:?}");
    }

    #[test]
    fn null_space_rank_deficient_is_none() {
        let rows = vec![vec![1.0, 0.0, 0.0], vec![2.0, 0.0, 0.0]];
        assert!(null_space_1(&rows).is_none());
    }

    #[test]
    fn null_space_2d_segment() {
        // A single edge (1,1): normal is (1,-1)/sqrt(2) up to sign.
        let rows = vec![vec![1.0, 1.0]];
        let n = null_space_1(&rows).unwrap();
        assert!((n[0] + n[1]).abs() < 1e-9);
        assert!((n[0].abs() - 1.0 / 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn determinant_known_values() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!((determinant(&a) + 2.0).abs() < 1e-12);
        let id3 = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        assert!((determinant(&id3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_swaps_sign() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!((determinant(&a) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_4x4_roundtrip() {
        let a = vec![
            vec![4.0, 1.0, 0.0, 0.5],
            vec![1.0, 3.0, 1.0, 0.0],
            vec![0.0, 1.0, 5.0, 1.0],
            vec![0.5, 0.0, 1.0, 2.0],
        ];
        let x_true = [1.0, -2.0, 0.5, 3.0];
        let b: Vec<f64> = a
            .iter()
            .map(|row| row.iter().zip(x_true.iter()).map(|(r, x)| r * x).sum())
            .collect();
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }
}
