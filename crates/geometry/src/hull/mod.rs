//! Convex hulls in arbitrary (low) dimension.
//!
//! The paper's methods are built on incremental convex hull machinery in
//! the style of Clarkson's randomized algorithm (paper §2, \[14\]): facets are
//! replaced when a new point sees them, with new facets erected on the
//! horizon ridges. `incremental` implements the full hull used by the CP
//! method and by half-space intersection; `gir-core` reuses the same
//! facet/ridge bookkeeping for FP's *partial* (incident-facet-only) hulls.
//! `hull2d` provides an exact 2-d monotone chain used for cross-checks
//! and for the GIR* result-hull pruning in the plane.

mod facet;
mod hull2d;
mod incremental;

pub use facet::Facet;
pub use hull2d::hull_2d_indices;
pub use incremental::ConvexHull;

/// Errors from hull construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HullError {
    /// Fewer than `d+1` input points.
    TooFewPoints,
    /// The input is affinely dependent: all points lie in a flat of the
    /// reported rank (< d). The caller should treat every point as extreme
    /// (a safe over-approximation for pruning) or reduce the dimension.
    Degenerate { rank: usize },
    /// A facet hyperplane could not be computed or oriented; the input is
    /// numerically ill-conditioned near the tolerance.
    Numerical,
}

impl std::fmt::Display for HullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HullError::TooFewPoints => write!(f, "fewer than d+1 points"),
            HullError::Degenerate { rank } => {
                write!(f, "affinely dependent input (rank {rank})")
            }
            HullError::Numerical => write!(f, "numerically degenerate facet"),
        }
    }
}

impl std::error::Error for HullError {}
