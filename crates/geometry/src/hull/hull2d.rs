//! Exact 2-d convex hull (Andrew's monotone chain).
//!
//! Used as an oracle to cross-check the d-dimensional incremental hull,
//! and by GIR* result pruning when `d = 2`.

use crate::vector::PointD;
use crate::EPS;

/// Returns the indices of the hull vertices of a 2-d point set in
/// counter-clockwise order. Collinear boundary points are excluded.
/// Degenerate inputs (all collinear) return the two extreme points, or one
/// index when all points coincide.
pub fn hull_2d_indices(points: &[PointD]) -> Vec<usize> {
    assert!(
        points.iter().all(|p| p.dim() == 2),
        "hull_2d needs 2-d points"
    );
    if points.is_empty() {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        let (pa, pb) = (&points[a], &points[b]);
        pa[0]
            .partial_cmp(&pb[0])
            .expect("non-NaN")
            .then(pa[1].partial_cmp(&pb[1]).expect("non-NaN"))
    });
    idx.dedup_by(|&mut a, &mut b| points[a].approx_eq(&points[b], EPS));
    if idx.len() < 3 {
        return idx;
    }

    let cross = |o: usize, a: usize, b: usize| -> f64 {
        let (po, pa, pb) = (&points[o], &points[a], &points[b]);
        (pa[0] - po[0]) * (pb[1] - po[1]) - (pa[1] - po[1]) * (pb[0] - po[0])
    };

    let mut lower: Vec<usize> = Vec::new();
    for &i in &idx {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], i) <= EPS {
            lower.pop();
        }
        lower.push(i);
    }
    let mut upper: Vec<usize> = Vec::new();
    for &i in idx.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], i) <= EPS {
            upper.pop();
        }
        upper.push(i);
    }
    lower.pop();
    upper.pop();
    if lower.len() + upper.len() < 3 {
        // All points collinear: report the two extremes.
        return vec![
            *idx.first().expect("non-empty"),
            *idx.last().expect("non-empty"),
        ];
    }
    lower.extend(upper);
    lower
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> PointD {
        PointD::new(vec![x, y])
    }

    #[test]
    fn square_with_interior() {
        let pts = vec![
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
        ];
        let mut h = hull_2d_indices(&pts);
        h.sort_unstable();
        assert_eq!(h, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ccw_orientation() {
        let pts = vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 2.0)];
        let h = hull_2d_indices(&pts);
        assert_eq!(h.len(), 3);
        // Signed area must be positive (CCW).
        let mut area = 0.0;
        for i in 0..h.len() {
            let a = &pts[h[i]];
            let b = &pts[h[(i + 1) % h.len()]];
            area += a[0] * b[1] - b[0] * a[1];
        }
        assert!(area > 0.0);
    }

    #[test]
    fn collinear_returns_extremes() {
        let pts = vec![p(0.0, 0.0), p(0.5, 0.5), p(1.0, 1.0), p(0.25, 0.25)];
        let h = hull_2d_indices(&pts);
        assert_eq!(h.len(), 2);
        assert!(h.contains(&0) && h.contains(&2));
    }

    #[test]
    fn single_and_duplicate_points() {
        assert_eq!(hull_2d_indices(&[p(0.3, 0.3)]), vec![0]);
        let h = hull_2d_indices(&[p(0.3, 0.3), p(0.3, 0.3)]);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn matches_incremental_hull_vertices() {
        let pts: Vec<PointD> = (0..60)
            .map(|i| {
                let t = i as f64;
                p((t * 0.37).sin() * 0.5 + 0.5, (t * 0.73).cos() * 0.5 + 0.5)
            })
            .collect();
        let mut chain = hull_2d_indices(&pts);
        chain.sort_unstable();
        let inc = crate::hull::ConvexHull::build(&pts).unwrap();
        let inc_v = inc.vertex_indices();
        assert_eq!(chain, inc_v);
    }
}
