//! Hull facet representation shared by the full and partial hulls.

use crate::hyperplane::Hyperplane;

/// A simplicial facet of a convex hull in `R^d`.
///
/// A facet is a `(d-1)`-dimensional face defined by exactly `d` vertices
/// (paper §6.3). `neighbors[i]` is the facet across the *ridge* obtained by
/// dropping `vertices[i]` — ridges are `(d-2)`-dimensional faces shared by
/// exactly two facets.
#[derive(Debug, Clone)]
pub struct Facet {
    /// Indices of the `d` defining vertices into the hull's point set.
    pub vertices: Vec<usize>,
    /// Supporting hyperplane, oriented so every hull point is on or below
    /// it (`plane.eval(p) ≤ 0` for all hull points).
    pub plane: Hyperplane,
    /// `neighbors[i]` = id of the facet sharing the ridge that omits
    /// `vertices[i]`.
    pub neighbors: Vec<usize>,
}

impl Facet {
    /// The ridge obtained by dropping the vertex at `slot`, as a sorted
    /// vertex-index list (canonical ridge key).
    pub fn ridge(&self, slot: usize) -> Vec<usize> {
        let mut r: Vec<usize> = self
            .vertices
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| (i != slot).then_some(v))
            .collect();
        r.sort_unstable();
        r
    }

    /// The slot whose ridge equals `ridge` (sorted), i.e. the slot of the
    /// unique vertex *not* in `ridge`.
    pub fn slot_of_ridge(&self, ridge: &[usize]) -> Option<usize> {
        self.vertices
            .iter()
            .position(|v| ridge.binary_search(v).is_err())
    }

    /// True when `v` is one of the facet's vertices.
    pub fn has_vertex(&self, v: usize) -> bool {
        self.vertices.contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::PointD;

    fn facet(vertices: Vec<usize>) -> Facet {
        Facet {
            vertices,
            plane: Hyperplane {
                normal: PointD::new(vec![1.0, 0.0, 0.0]),
                offset: 0.0,
            },
            neighbors: vec![usize::MAX; 3],
        }
    }

    #[test]
    fn ridge_drops_slot_vertex() {
        let f = facet(vec![7, 3, 5]);
        assert_eq!(f.ridge(0), vec![3, 5]);
        assert_eq!(f.ridge(1), vec![5, 7]);
        assert_eq!(f.ridge(2), vec![3, 7]);
    }

    #[test]
    fn slot_of_ridge_inverts_ridge() {
        let f = facet(vec![7, 3, 5]);
        for slot in 0..3 {
            let r = f.ridge(slot);
            assert_eq!(f.slot_of_ridge(&r), Some(slot));
        }
        assert_eq!(f.slot_of_ridge(&[3, 5, 7][..2]), Some(0));
    }

    #[test]
    fn has_vertex() {
        let f = facet(vec![1, 2, 3]);
        assert!(f.has_vertex(2));
        assert!(!f.has_vertex(9));
    }
}
