//! Incremental (beneath-and-beyond) convex hull in arbitrary dimension.
//!
//! This is the construction underlying Clarkson's algorithm (paper §2):
//! points are inserted one at a time; when a point lies *above* (sees) one
//! or more facets, those facets are removed and replaced by new facets
//! connecting the point to the horizon ridges. The expected output size is
//! `O(n^{⌊d/2⌋})` — the very cost the paper's FP method works around by
//! maintaining only the facets incident to one vertex.

use super::{Facet, HullError};
use crate::hyperplane::Hyperplane;
use crate::vector::PointD;
use crate::EPS;
use std::collections::HashMap;

/// A full convex hull of a point set in `R^d`.
#[derive(Debug, Clone)]
pub struct ConvexHull {
    points: Vec<PointD>,
    /// Facet slab; `None` entries are removed (tombstoned) facets.
    facets: Vec<Option<Facet>>,
    live_facets: usize,
    interior: PointD,
    dim: usize,
}

impl ConvexHull {
    /// Builds the hull of `points`. Requires at least `d+1` affinely
    /// independent points; otherwise returns [`HullError::Degenerate`] with
    /// the affine rank found.
    pub fn build(points: &[PointD]) -> Result<ConvexHull, HullError> {
        let d = points.first().map_or(0, |p| p.dim());
        if points.len() < d + 1 {
            return Err(HullError::TooFewPoints);
        }
        let simplex = initial_simplex(points, d)?;
        let interior = PointD::centroid(simplex.iter().map(|&i| &points[i]));

        let mut hull = ConvexHull {
            points: points.to_vec(),
            facets: Vec::new(),
            live_facets: 0,
            interior,
            dim: d,
        };
        hull.init_simplex_facets(&simplex)?;

        // Insert the remaining points in a deterministic pseudo-random
        // order: randomized insertion keeps the expected facet count low
        // (Clarkson [14]), determinism keeps tests reproducible.
        let mut order: Vec<usize> = (0..points.len()).filter(|i| !simplex.contains(i)).collect();
        shuffle_deterministic(&mut order);
        for idx in order {
            hull.insert_point(idx)?;
        }
        Ok(hull)
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The input point set (hull vertex indices refer into this).
    pub fn points(&self) -> &[PointD] {
        &self.points
    }

    /// A point strictly inside the hull.
    pub fn interior_point(&self) -> &PointD {
        &self.interior
    }

    /// Number of live facets.
    pub fn num_facets(&self) -> usize {
        self.live_facets
    }

    /// Iterates over live facets.
    pub fn facets(&self) -> impl Iterator<Item = &Facet> {
        self.facets.iter().filter_map(|f| f.as_ref())
    }

    /// Sorted, deduplicated indices of points that are hull vertices.
    pub fn vertex_indices(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .facets()
            .flat_map(|f| f.vertices.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// True when `x` lies inside or on the hull (within `tol`).
    pub fn contains(&self, x: &PointD, tol: f64) -> bool {
        self.facets().all(|f| f.plane.eval(x) <= tol)
    }

    /// Exact hull volume: the facets triangulate the boundary (each facet is
    /// a `(d-1)`-simplex), so the hull is the disjoint union of simplices
    /// with apex at the interior point.
    pub fn volume(&self) -> f64 {
        let c = &self.interior;
        let mut vol = 0.0;
        let mut fact = 1.0;
        for i in 1..=self.dim {
            fact *= i as f64;
        }
        for f in self.facets() {
            let rows: Vec<Vec<f64>> = f
                .vertices
                .iter()
                .map(|&v| self.points[v].sub(c).coords().to_vec())
                .collect();
            vol += crate::linalg::determinant(&rows).abs();
        }
        vol / fact
    }

    /// Number of facets incident to point index `v` (used to cross-check
    /// FP's partial-hull star against the full hull in tests and Fig 8).
    pub fn facets_incident_to(&self, v: usize) -> Vec<&Facet> {
        self.facets().filter(|f| f.has_vertex(v)).collect()
    }

    fn init_simplex_facets(&mut self, simplex: &[usize]) -> Result<(), HullError> {
        let d = self.dim;
        // Facet t omits simplex[t]; its neighbor across the ridge omitting
        // vertex simplex[j] is the facet omitting simplex[j].
        let mut ids = Vec::with_capacity(d + 1);
        for t in 0..=d {
            let vertices: Vec<usize> = simplex
                .iter()
                .enumerate()
                .filter_map(|(i, &v)| (i != t).then_some(v))
                .collect();
            let pts: Vec<PointD> = vertices.iter().map(|&v| self.points[v].clone()).collect();
            let plane = Hyperplane::through_points(&pts)
                .and_then(|h| h.oriented_away_from(&self.interior))
                .ok_or(HullError::Numerical)?;
            let id = self.alloc_facet(Facet {
                vertices,
                plane,
                neighbors: vec![usize::MAX; d],
            });
            ids.push(id);
        }
        // Wire neighbors: in facet t (omitting simplex[t]), the slot holding
        // simplex[j] has ridge omitting simplex[j], shared with facet j.
        for t in 0..=d {
            let verts = self.facets[ids[t]].as_ref().expect("live").vertices.clone();
            for (slot, &v) in verts.iter().enumerate() {
                let j = simplex
                    .iter()
                    .position(|&s| s == v)
                    .expect("simplex vertex");
                let f = self.facets[ids[t]].as_mut().expect("live");
                f.neighbors[slot] = ids[j];
            }
        }
        Ok(())
    }

    fn alloc_facet(&mut self, f: Facet) -> usize {
        self.live_facets += 1;
        self.facets.push(Some(f));
        self.facets.len() - 1
    }

    fn remove_facet(&mut self, id: usize) {
        if self.facets[id].take().is_some() {
            self.live_facets -= 1;
        }
    }

    /// Inserts one point, replacing the facets it sees. Points inside (or
    /// on) the current hull are ignored.
    fn insert_point(&mut self, idx: usize) -> Result<(), HullError> {
        let p = self.points[idx].clone();
        let visible: Vec<usize> = self
            .facets
            .iter()
            .enumerate()
            .filter_map(|(id, f)| f.as_ref().filter(|f| f.plane.eval(&p) > EPS).map(|_| id))
            .collect();
        if visible.is_empty() {
            return Ok(());
        }
        let visible_set: std::collections::HashSet<usize> = visible.iter().copied().collect();

        // Horizon ridges: (ridge, outer facet id, outer slot).
        let mut horizon: Vec<(Vec<usize>, usize)> = Vec::new();
        for &fid in &visible {
            let f = self.facets[fid].as_ref().expect("live");
            for slot in 0..f.neighbors.len() {
                let nb = f.neighbors[slot];
                if !visible_set.contains(&nb) {
                    horizon.push((f.ridge(slot), nb));
                }
            }
        }

        for &fid in &visible {
            self.remove_facet(fid);
        }

        // Erect a new facet on each horizon ridge, apexed at `p`.
        // `ridge_map` links new facets to each other across the sub-ridges
        // that contain `idx`.
        let mut ridge_map: HashMap<Vec<usize>, (usize, usize)> = HashMap::new();
        for (ridge, outer) in horizon {
            let mut vertices = ridge.clone();
            vertices.push(idx);
            let pts: Vec<PointD> = vertices.iter().map(|&v| self.points[v].clone()).collect();
            let plane = Hyperplane::through_points(&pts)
                .and_then(|h| h.oriented_away_from(&self.interior))
                .ok_or(HullError::Numerical)?;
            let d = self.dim;
            let new_id = self.alloc_facet(Facet {
                vertices: vertices.clone(),
                plane,
                neighbors: vec![usize::MAX; d],
            });

            // Neighbor across the original ridge (the slot of `idx`) is the
            // surviving outer facet; fix its back-pointer too.
            let apex_slot = vertices.iter().position(|&v| v == idx).expect("apex");
            self.facets[new_id].as_mut().expect("live").neighbors[apex_slot] = outer;
            let outer_f = self.facets[outer].as_mut().expect("outer facet survives");
            let outer_slot = outer_f
                .slot_of_ridge(&ridge)
                .expect("outer facet shares the horizon ridge");
            outer_f.neighbors[outer_slot] = new_id;

            // Sub-ridges containing `idx` pair up new facets.
            for slot in 0..vertices.len() {
                if slot == apex_slot {
                    continue;
                }
                let sub = self.facets[new_id].as_ref().expect("live").ridge(slot);
                match ridge_map.remove(&sub) {
                    Some((other_id, other_slot)) => {
                        self.facets[new_id].as_mut().expect("live").neighbors[slot] = other_id;
                        self.facets[other_id].as_mut().expect("live").neighbors[other_slot] =
                            new_id;
                    }
                    None => {
                        ridge_map.insert(sub, (new_id, slot));
                    }
                }
            }
        }
        debug_assert!(ridge_map.is_empty(), "unpaired sub-ridges after insert");
        Ok(())
    }
}

/// Greedily selects `d+1` affinely independent points by maximizing the
/// Gram–Schmidt residual at each step; fails with the achieved rank when
/// the input lies in a lower-dimensional flat.
fn initial_simplex(points: &[PointD], d: usize) -> Result<Vec<usize>, HullError> {
    // Start from an extreme point (max sum) to keep the seed well spread.
    let first = (0..points.len())
        .max_by(|&i, &j| {
            let si: f64 = points[i].coords().iter().sum();
            let sj: f64 = points[j].coords().iter().sum();
            si.partial_cmp(&sj).expect("non-NaN")
        })
        .expect("non-empty input");
    let mut chosen = vec![first];
    let mut basis: Vec<PointD> = Vec::new(); // orthonormal basis of span{vi - v0}

    while chosen.len() < d + 1 {
        let v0 = &points[chosen[0]];
        let mut best: Option<(usize, f64, PointD)> = None;
        for (i, p) in points.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let mut r = p.sub(v0);
            for b in &basis {
                let c = r.dot(b);
                r = r.add_scaled(b, -c);
            }
            let n = r.norm();
            if best.as_ref().is_none_or(|(_, bn, _)| n > *bn) {
                best = Some((i, n, r));
            }
        }
        match best {
            Some((i, n, r)) if n > EPS => {
                basis.push(r.scale(1.0 / n));
                chosen.push(i);
            }
            _ => {
                return Err(HullError::Degenerate {
                    rank: chosen.len().saturating_sub(1),
                })
            }
        }
    }
    Ok(chosen)
}

/// Deterministic Fisher–Yates shuffle (SplitMix64-driven) so hull builds
/// are reproducible without an RNG dependency in this crate.
fn shuffle_deterministic(v: &mut [usize]) {
    let mut state = 0x853C49E6748FEA9Bu64 ^ (v.len() as u64);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[f64]) -> PointD {
        PointD::from(v)
    }

    #[test]
    fn square_hull_2d() {
        let pts = vec![
            p(&[0.0, 0.0]),
            p(&[1.0, 0.0]),
            p(&[1.0, 1.0]),
            p(&[0.0, 1.0]),
            p(&[0.5, 0.5]), // interior
        ];
        let h = ConvexHull::build(&pts).unwrap();
        assert_eq!(h.vertex_indices(), vec![0, 1, 2, 3]);
        assert_eq!(h.num_facets(), 4);
        assert!((h.volume() - 1.0).abs() < 1e-9);
        assert!(h.contains(&p(&[0.9, 0.1]), 1e-9));
        assert!(!h.contains(&p(&[1.1, 0.5]), 1e-9));
    }

    #[test]
    fn cube_hull_3d() {
        let mut pts = Vec::new();
        for x in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for z in [0.0, 1.0] {
                    pts.push(p(&[x, y, z]));
                }
            }
        }
        pts.push(p(&[0.5, 0.5, 0.5]));
        let h = ConvexHull::build(&pts).unwrap();
        assert_eq!(h.vertex_indices().len(), 8);
        // 6 square faces, each split into 2 triangles = 12 simplicial facets.
        assert_eq!(h.num_facets(), 12);
        assert!((h.volume() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_hull_4d_volume() {
        // Unit 4-simplex has volume 1/4! = 1/24.
        let mut pts = vec![p(&[0.0, 0.0, 0.0, 0.0])];
        for i in 0..4 {
            pts.push(PointD::basis(4, i));
        }
        let h = ConvexHull::build(&pts).unwrap();
        assert_eq!(h.vertex_indices().len(), 5);
        assert!((h.volume() - 1.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_collinear_input() {
        let pts = vec![p(&[0.0, 0.0]), p(&[0.5, 0.5]), p(&[1.0, 1.0])];
        assert_eq!(
            ConvexHull::build(&pts).unwrap_err(),
            HullError::Degenerate { rank: 1 }
        );
    }

    #[test]
    fn too_few_points() {
        let pts = vec![p(&[0.0, 0.0, 0.0]), p(&[1.0, 0.0, 0.0])];
        assert_eq!(
            ConvexHull::build(&pts).unwrap_err(),
            HullError::TooFewPoints
        );
    }

    #[test]
    fn adjacency_is_symmetric_and_ridges_shared() {
        let pts: Vec<PointD> = (0..40)
            .map(|i| {
                let t = i as f64;
                p(&[
                    (t * 0.701).sin() * 0.5 + 0.5,
                    (t * 1.137).cos() * 0.5 + 0.5,
                    (t * 0.397).sin() * (t * 0.211).cos() * 0.5 + 0.5,
                ])
            })
            .collect();
        let h = ConvexHull::build(&pts).unwrap();
        let facets: Vec<(usize, &Facet)> = h
            .facets
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (i, f)))
            .collect();
        for (id, f) in &facets {
            for slot in 0..f.neighbors.len() {
                let nb_id = f.neighbors[slot];
                let nb = h.facets[nb_id].as_ref().expect("neighbor live");
                // The neighbor shares exactly the ridge.
                let ridge = f.ridge(slot);
                let back = nb.slot_of_ridge(&ridge).expect("shared ridge");
                assert_eq!(nb.neighbors[back], *id, "asymmetric adjacency");
            }
        }
    }

    #[test]
    fn all_points_inside_hull_and_on_facet_planes() {
        let pts: Vec<PointD> = (0..120)
            .map(|i| {
                let t = i as f64;
                p(&[
                    (t * 0.17).sin().abs(),
                    (t * 0.29).cos().abs(),
                    ((t * 0.41).sin() * (t * 0.13).cos()).abs(),
                    (t * 0.07).fract(),
                ])
            })
            .collect();
        let h = ConvexHull::build(&pts).unwrap();
        for pt in &pts {
            assert!(h.contains(pt, 1e-7));
        }
        // Facet planes actually pass through their vertices.
        for f in h.facets() {
            for &v in &f.vertices {
                assert!(f.plane.eval(&pts[v]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn duplicate_points_are_harmless() {
        let pts = vec![
            p(&[0.0, 0.0]),
            p(&[1.0, 0.0]),
            p(&[0.0, 1.0]),
            p(&[1.0, 0.0]),
            p(&[1.0, 1.0]),
            p(&[1.0, 1.0]),
        ];
        let h = ConvexHull::build(&pts).unwrap();
        assert_eq!(h.num_facets(), 4);
        assert!((h.volume() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incident_facets_cover_vertex() {
        let mut pts = vec![p(&[0.0, 0.0, 0.0])];
        for i in 0..3 {
            pts.push(PointD::basis(3, i));
        }
        pts.push(p(&[1.0, 1.0, 1.0]));
        let h = ConvexHull::build(&pts).unwrap();
        let apex = 4; // (1,1,1)
        let inc = h.facets_incident_to(apex);
        assert!(!inc.is_empty());
        for f in inc {
            assert!(f.has_vertex(apex));
        }
    }
}
