//! Volume of H-represented convex regions.
//!
//! The ratio of GIR volume to query-space volume is the paper's robustness
//! measure (§1, §8, Fig 14; the LIK probability of \[30\]). We compute it
//! exactly when vertex enumeration succeeds, and fall back to Monte-Carlo
//! integration over an LP-tightened bounding box otherwise. The bounding
//! box matters: GIR volumes drop to `10^-15` at `d = 8`, far beyond what
//! uniform sampling of `[0,1]^d` could resolve.

use crate::halfspace::{intersect_halfspaces, region_contains, IntersectError};
use crate::hyperplane::HalfSpace;
use crate::lp::{maximize_scratch, ConsView, LpScratch};
use crate::polytope::Polytope;
use crate::vector::PointD;

/// How a volume value was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VolumeMethod {
    /// Exact: vertex enumeration + simplex-fan volume.
    Exact,
    /// Monte-Carlo over a per-axis LP bounding box, with the sample count.
    MonteCarlo { samples: usize },
    /// The region is empty or lower-dimensional: volume exactly zero.
    DegenerateZero,
}

/// A volume value with its derivation method.
#[derive(Debug, Clone, Copy)]
pub struct VolumeEstimate {
    /// Euclidean volume (in query-space units, so also the ratio to the
    /// `[0,1]^d` query-space volume).
    pub volume: f64,
    /// How it was computed.
    pub method: VolumeMethod,
}

/// Options controlling the exact/Monte-Carlo trade-off.
#[derive(Debug, Clone, Copy)]
pub struct VolumeOptions {
    /// Give up on exact enumeration above this many half-spaces (the dual
    /// hull cost grows as `O(m^{⌊d/2⌋})`).
    pub exact_max_halfspaces: usize,
    /// Monte-Carlo sample count.
    pub mc_samples: usize,
    /// Seed for the deterministic sampler.
    pub seed: u64,
}

impl Default for VolumeOptions {
    fn default() -> Self {
        VolumeOptions {
            exact_max_halfspaces: 512,
            mc_samples: 200_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Computes the volume of `{x : h.normal·x ≤ h.offset ∀h}`; the input must
/// include bounding constraints (GIR regions include the query box).
///
/// `interior_hint` is forwarded to the dual transform (the query vector,
/// for GIR callers).
pub fn region_volume(
    halfspaces: &[HalfSpace],
    d: usize,
    interior_hint: Option<&PointD>,
    opts: &VolumeOptions,
) -> VolumeEstimate {
    if halfspaces.len() <= opts.exact_max_halfspaces {
        match intersect_halfspaces(halfspaces, interior_hint) {
            Ok(ix) => {
                if ix.vertices.len() > d {
                    if let Ok(poly) = Polytope::from_vertices(&ix.vertices) {
                        return VolumeEstimate {
                            volume: poly.volume(),
                            method: VolumeMethod::Exact,
                        };
                    }
                }
                // Too few / degenerate vertices: flat region.
                return VolumeEstimate {
                    volume: 0.0,
                    method: VolumeMethod::DegenerateZero,
                };
            }
            Err(IntersectError::Empty) | Err(IntersectError::Flat) => {
                return VolumeEstimate {
                    volume: 0.0,
                    method: VolumeMethod::DegenerateZero,
                }
            }
            Err(IntersectError::Numerical(_)) => { /* fall through to MC */ }
        }
    }
    monte_carlo_volume(halfspaces, d, opts)
}

/// Monte-Carlo volume over the LP-tightened axis bounding box.
pub fn monte_carlo_volume(
    halfspaces: &[HalfSpace],
    d: usize,
    opts: &VolumeOptions,
) -> VolumeEstimate {
    // One warm-started scratch for all 2d axis-extrema solves, viewing
    // the half-space list directly (no constraint copies).
    let cons = ConsView::Half(halfspaces);
    let mut scratch = LpScratch::new();
    let mut lo = vec![0.0f64; d];
    let mut hi = vec![1.0f64; d];
    let mut c = vec![0.0f64; d];
    let mut x = vec![0.0f64; d];
    for i in 0..d {
        c[i] = 1.0;
        let Some(up) = maximize_scratch(&mut scratch, &c, cons, 0.0, 1.0, &mut x) else {
            return VolumeEstimate {
                volume: 0.0,
                method: VolumeMethod::DegenerateZero,
            };
        };
        hi[i] = up.clamp(0.0, 1.0);
        c[i] = -1.0;
        // A feasibility flip between the two directions means the
        // region is thinner than the LP tolerance: volume is zero.
        let Some(dn) = maximize_scratch(&mut scratch, &c, cons, 0.0, 1.0, &mut x) else {
            return VolumeEstimate {
                volume: 0.0,
                method: VolumeMethod::DegenerateZero,
            };
        };
        lo[i] = (-dn).clamp(0.0, 1.0);
        c[i] = 0.0;
    }
    let mut box_vol = 1.0;
    for i in 0..d {
        let w = hi[i] - lo[i];
        if w <= 0.0 {
            return VolumeEstimate {
                volume: 0.0,
                method: VolumeMethod::DegenerateZero,
            };
        }
        box_vol *= w;
    }

    // Deterministic xorshift sampler: benchmark runs must be reproducible.
    let mut state = opts.seed | 1;
    let mut next_f64 = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut hits = 0usize;
    let mut x = vec![0.0f64; d];
    for _ in 0..opts.mc_samples {
        for i in 0..d {
            x[i] = lo[i] + (hi[i] - lo[i]) * next_f64();
        }
        let p = PointD::from(x.as_slice());
        if region_contains(halfspaces, &p, 0.0) {
            hits += 1;
        }
    }
    VolumeEstimate {
        volume: box_vol * hits as f64 / opts.mc_samples as f64,
        method: VolumeMethod::MonteCarlo {
            samples: opts.mc_samples,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Provenance;

    fn hs(n: &[f64], b: f64) -> HalfSpace {
        HalfSpace {
            normal: PointD::from(n),
            offset: b,
            provenance: Provenance::NonResult { record_id: 0 },
        }
    }

    #[test]
    fn unit_box_volume_exact() {
        let cons = HalfSpace::full_query_box(3);
        let v = region_volume(&cons, 3, None, &VolumeOptions::default());
        assert_eq!(v.method, VolumeMethod::Exact);
        assert!((v.volume - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_box_volume() {
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[1.0, 0.0], 0.5));
        let v = region_volume(&cons, 2, None, &VolumeOptions::default());
        assert!((v.volume - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wedge_volume_exact_vs_mc() {
        // Wedge y ≤ 2x, y ≥ x/2 in the unit square: area = 1 − 1/4 − 1/4
        // = ... compute: region between lines through origin with slopes
        // 2 and 1/2. Area = ∫ depends; complementary triangles have area
        // 1/4 (above y=2x: triangle (0,0),(0.5,1),(0,1)) and 1/4 (below
        // y=x/2: triangle (0,0),(1,0),(1,0.5)). So wedge = 0.5.
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[-2.0, 1.0], 0.0));
        cons.push(hs(&[0.5, -1.0], 0.0));
        let q = PointD::new(vec![0.6, 0.6]);
        let exact = region_volume(&cons, 2, Some(&q), &VolumeOptions::default());
        assert_eq!(exact.method, VolumeMethod::Exact);
        assert!((exact.volume - 0.5).abs() < 1e-9, "vol {}", exact.volume);

        let mc = monte_carlo_volume(&cons, 2, &VolumeOptions::default());
        assert!(
            (mc.volume - 0.5).abs() < 0.01,
            "mc volume {} too far from 0.5",
            mc.volume
        );
    }

    #[test]
    fn empty_region_is_zero() {
        let mut cons = HalfSpace::full_query_box(2);
        cons.push(hs(&[1.0, 0.0], -0.2));
        let v = region_volume(&cons, 2, None, &VolumeOptions::default());
        assert_eq!(v.method, VolumeMethod::DegenerateZero);
        assert_eq!(v.volume, 0.0);
    }

    #[test]
    fn mc_bounding_box_tightens_small_regions() {
        // Tiny square region [0.4,0.401]^2: plain unit-box sampling would
        // need ~10^6 samples per hit; the LP bbox makes it exact-ish.
        let mut cons = Vec::new();
        cons.extend(HalfSpace::full_query_box(2));
        cons.push(hs(&[1.0, 0.0], 0.401));
        cons.push(hs(&[-1.0, 0.0], -0.4));
        cons.push(hs(&[0.0, 1.0], 0.401));
        cons.push(hs(&[0.0, -1.0], -0.4));
        let mc = monte_carlo_volume(&cons, 2, &VolumeOptions::default());
        let truth = 1e-3 * 1e-3;
        assert!(
            (mc.volume - truth).abs() / truth < 0.05,
            "mc {} vs {}",
            mc.volume,
            truth
        );
    }

    #[test]
    fn exact_simplex_volume_3d() {
        // x+y+z ≤ 1 corner of the cube: volume 1/6.
        let mut cons = HalfSpace::full_query_box(3);
        cons.push(hs(&[1.0, 1.0, 1.0], 1.0));
        let v = region_volume(&cons, 3, None, &VolumeOptions::default());
        assert_eq!(v.method, VolumeMethod::Exact);
        assert!((v.volume - 1.0 / 6.0).abs() < 1e-9);
    }
}
