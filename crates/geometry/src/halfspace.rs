//! Half-space intersection via point/hyperplane duality.
//!
//! The paper computes final GIRs by intersecting half-spaces (its
//! implementation delegates to the Qhull library, §8); we implement the
//! same classical reduction from scratch: with an interior point `x0` of
//! the intersection, each half-space `n·x ≤ b` maps to the dual point
//! `n / (b − n·x0)`. Facets of the dual hull correspond to vertices of the
//! primal region, and *vertices* of the dual hull correspond to the
//! non-redundant half-spaces — exactly the facets of the GIR, whose
//! provenance tells the user which record overtakes which on that boundary
//! (paper §3.2).

use crate::hull::{ConvexHull, HullError};
use crate::hyperplane::HalfSpace;
use crate::lp::{chebyshev_center_view, ConsView};
use crate::vector::PointD;
use crate::{EPS, LOOSE_EPS};

/// Result of intersecting half-spaces.
#[derive(Debug, Clone)]
pub struct HalfspaceIntersection {
    /// Vertices of the intersection polytope (deduplicated).
    pub vertices: Vec<PointD>,
    /// Indices (into the input slice) of half-spaces that actually bound
    /// the region — its facets.
    pub nonredundant: Vec<usize>,
    /// The interior point used for the dual transform.
    pub interior: PointD,
}

/// Failure modes of the intersection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntersectError {
    /// The intersection is empty.
    Empty,
    /// The intersection has empty interior (it is a lower-dimensional
    /// set): the largest inscribed ball has (near-)zero radius. Volumes
    /// are zero and vertex enumeration is not attempted.
    Flat,
    /// Hull construction failed numerically.
    Numerical(HullError),
}

impl std::fmt::Display for IntersectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntersectError::Empty => write!(f, "empty intersection"),
            IntersectError::Flat => write!(f, "intersection has empty interior"),
            IntersectError::Numerical(e) => write!(f, "dual hull failed: {e}"),
        }
    }
}

impl std::error::Error for IntersectError {}

/// Minimum inscribed-ball radius for the region to count as full-
/// dimensional. GIR volumes at `d = 8` reach `10^-15` (paper Fig 14), i.e.
/// inscribed radii around `10^-2` per axis pair; `1e-10` stays far below
/// any region the experiments produce while rejecting true degeneracies.
const FLAT_TOL: f64 = 1e-10;

/// Intersects the half-spaces (each `normal · x ≤ offset`), which must
/// include enough constraints to make the region bounded (GIR callers
/// always include the `[0,1]^d` query box).
///
/// `interior_hint` short-circuits the Chebyshev-center LP when the caller
/// already knows a deep interior point (the GIR always contains the
/// original query vector `q`).
pub fn intersect_halfspaces(
    halfspaces: &[HalfSpace],
    interior_hint: Option<&PointD>,
) -> Result<HalfspaceIntersection, IntersectError> {
    let d = halfspaces
        .first()
        .map(|h| h.normal.dim())
        .expect("at least one half-space");

    let interior = match interior_hint {
        Some(x0) if min_slack(halfspaces, x0) > FLAT_TOL => x0.clone(),
        _ => {
            let (c, r) = chebyshev_center_view(ConsView::Half(halfspaces), 0.0, 1.0, d)
                .ok_or(IntersectError::Empty)?;
            if r <= FLAT_TOL {
                return Err(IntersectError::Flat);
            }
            c
        }
    };

    // Dual transform. Half-spaces with huge dual norm (tiny slack at the
    // interior point) are kept — they are the tightest constraints.
    let mut duals: Vec<PointD> = Vec::with_capacity(halfspaces.len());
    for h in halfspaces {
        let slack = h.offset - h.normal.dot(&interior);
        debug_assert!(slack > 0.0, "interior point not strictly interior");
        duals.push(h.normal.scale(1.0 / slack.max(FLAT_TOL)));
    }

    let hull = ConvexHull::build(&duals).map_err(IntersectError::Numerical)?;

    // Dual hull facets → primal vertices.
    let mut vertices: Vec<PointD> = Vec::new();
    for f in hull.facets() {
        // Facet plane u·y = c with the hull (hence the origin) on the
        // `≤` side; origin strictly inside ⇒ c > 0.
        let c = f.plane.offset;
        if c <= EPS {
            // Numerically unbounded direction; skip (the box constraints
            // make this impossible for exact arithmetic).
            continue;
        }
        let v = interior.add_scaled(&f.plane.normal, 1.0 / c);
        if !vertices.iter().any(|u| u.approx_eq(&v, LOOSE_EPS)) {
            vertices.push(v);
        }
    }

    // Dual hull vertices → primal facets (non-redundant half-spaces).
    let nonredundant = hull.vertex_indices();

    Ok(HalfspaceIntersection {
        vertices,
        nonredundant,
        interior,
    })
}

fn min_slack(halfspaces: &[HalfSpace], x: &PointD) -> f64 {
    halfspaces
        .iter()
        .map(|h| h.slack(x))
        .fold(f64::INFINITY, f64::min)
}

/// True when `x` satisfies every half-space within `tol`.
pub fn region_contains(halfspaces: &[HalfSpace], x: &PointD, tol: f64) -> bool {
    halfspaces.iter().all(|h| h.contains(x, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Provenance;

    fn hs(n: &[f64], b: f64) -> HalfSpace {
        HalfSpace {
            normal: PointD::from(n),
            offset: b,
            provenance: Provenance::NonResult { record_id: 0 },
        }
    }

    fn unit_box(d: usize) -> Vec<HalfSpace> {
        HalfSpace::full_query_box(d)
    }

    #[test]
    fn unit_square_vertices() {
        let hs = unit_box(2);
        let r = intersect_halfspaces(&hs, None).unwrap();
        assert_eq!(r.vertices.len(), 4);
        assert_eq!(r.nonredundant.len(), 4);
        for corner in [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]] {
            let c = PointD::from(&corner[..]);
            assert!(
                r.vertices.iter().any(|v| v.approx_eq(&c, 1e-6)),
                "missing corner {corner:?}"
            );
        }
    }

    #[test]
    fn wedge_in_unit_square() {
        // GIR-style wedge: y ≤ 2x and y ≥ x/2, i.e. -2x + y ≤ 0 and
        // x/2 - y ≤ 0, inside the box. Vertices: (0,0), (1,0.5), (1,1),
        // (0.5,1).
        let mut cons = unit_box(2);
        cons.push(hs(&[-2.0, 1.0], 0.0));
        cons.push(hs(&[0.5, -1.0], 0.0));
        let hint = PointD::new(vec![0.6, 0.6]);
        let r = intersect_halfspaces(&cons, Some(&hint)).unwrap();
        assert_eq!(r.vertices.len(), 4, "vertices: {:?}", r.vertices);
        for v in [[0.0, 0.0], [1.0, 0.5], [1.0, 1.0], [0.5, 1.0]] {
            let c = PointD::from(&v[..]);
            assert!(
                r.vertices.iter().any(|u| u.approx_eq(&c, 1e-6)),
                "missing vertex {v:?}; got {:?}",
                r.vertices
            );
        }
    }

    #[test]
    fn redundant_halfspace_detected() {
        let mut cons = unit_box(2);
        cons.push(hs(&[1.0, 1.0], 5.0)); // x + y ≤ 5: redundant
        let r = intersect_halfspaces(&cons, None).unwrap();
        assert!(
            !r.nonredundant.contains(&4),
            "redundant constraint reported as facet"
        );
        assert_eq!(r.nonredundant.len(), 4);
    }

    #[test]
    fn empty_intersection() {
        let mut cons = unit_box(2);
        cons.push(hs(&[1.0, 0.0], -0.5)); // x ≤ -0.5
        assert_eq!(
            intersect_halfspaces(&cons, None).unwrap_err(),
            IntersectError::Empty
        );
    }

    #[test]
    fn flat_intersection() {
        let mut cons = unit_box(2);
        cons.push(hs(&[1.0, 0.0], 0.3)); // x ≤ 0.3
        cons.push(hs(&[-1.0, 0.0], -0.3)); // x ≥ 0.3
        assert_eq!(
            intersect_halfspaces(&cons, None).unwrap_err(),
            IntersectError::Flat
        );
    }

    #[test]
    fn cube_3d_with_diagonal_cut() {
        // Cut the unit cube with x + y + z ≤ 1.5.
        let mut cons = unit_box(3);
        cons.push(hs(&[1.0, 1.0, 1.0], 1.5));
        let r = intersect_halfspaces(&cons, None).unwrap();
        // All 7 half-spaces bound the region (the cut removes one corner
        // but all six cube faces still contribute).
        assert_eq!(r.nonredundant.len(), 7);
        // Every vertex satisfies all constraints.
        for v in &r.vertices {
            for h in &cons {
                assert!(h.contains(v, 1e-6), "vertex {v:?} violates constraint");
            }
        }
    }

    #[test]
    fn interior_hint_is_used_when_valid() {
        let hsx = unit_box(2);
        let hint = PointD::new(vec![0.25, 0.75]);
        let r = intersect_halfspaces(&hsx, Some(&hint)).unwrap();
        assert!(r.interior.approx_eq(&hint, 0.0));
    }

    #[test]
    fn region_contains_matches_halfspace_test() {
        let mut cons = unit_box(2);
        cons.push(hs(&[-2.0, 1.0], 0.0));
        assert!(region_contains(&cons, &PointD::new(vec![0.5, 0.5]), 1e-9));
        assert!(!region_contains(&cons, &PointD::new(vec![0.1, 0.9]), 1e-9));
    }
}
