//! Seidel's randomized incremental linear programming.
//!
//! GIR regions are intersections of half-spaces in `d ≤ 8` dimensions, so
//! Seidel's algorithm — expected `O(d! · m)` for `m` constraints — is the
//! right tool for the small LP subproblems the library needs:
//!
//! * per-axis extrema of a region (tight bounding boxes for Monte-Carlo
//!   volume estimation),
//! * Chebyshev centers (robust interior points for the dual transform in
//!   [`crate::halfspace`]),
//! * feasibility / emptiness checks.
//!
//! Constraints are `normal · x ≤ offset`. The solver requires an explicit
//! bounding box to guarantee boundedness; GIR callers pass the query space
//! `[0,1]^d`.

use crate::vector::PointD;

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// A maximizer exists (the feasible set is non-empty; it is always
    /// bounded because of the required bounding box).
    Optimal,
    /// The feasible set is empty (within tolerance).
    Infeasible,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// The maximizer, when `status == Optimal`.
    pub x: Option<PointD>,
    /// The objective value at the maximizer (`f64::NEG_INFINITY` when
    /// infeasible).
    pub value: f64,
}

/// Comparison tolerance for constraint violation. Slightly looser than the
/// geometric epsilon: LP pivoting divides by sub-unit pivots and loses a
/// couple of digits.
const LP_EPS: f64 = 1e-9;

/// Maximizes `c · x` subject to `normal · x ≤ offset` for every
/// `(normal, offset)` in `constraints`, and `lo ≤ x_i ≤ hi` for all `i`.
pub fn maximize(c: &PointD, constraints: &[(PointD, f64)], lo: f64, hi: f64) -> LpResult {
    let d = c.dim();
    let cons: Vec<(Vec<f64>, f64)> = constraints
        .iter()
        .map(|(n, b)| (n.coords().to_vec(), *b))
        .collect();
    let obj = c.coords().to_vec();
    match solve_rec(&obj, cons, lo, hi, d, 0x5EED_1E57) {
        Some(x) => {
            let xp = PointD::from(x);
            let value = c.dot(&xp);
            LpResult {
                status: LpStatus::Optimal,
                x: Some(xp),
                value,
            }
        }
        None => LpResult {
            status: LpStatus::Infeasible,
            x: None,
            value: f64::NEG_INFINITY,
        },
    }
}

/// Returns the Chebyshev center of the region `{x : normal·x ≤ offset} ∩
/// [lo,hi]^d` — the center of the largest inscribed ball — together with
/// the ball radius. `None` when the region is empty.
///
/// Solved as an LP in `d+1` variables: maximize `r` subject to
/// `a·x + ‖a‖·r ≤ b` for every half-space (including the box sides).
pub fn chebyshev_center(
    constraints: &[(PointD, f64)],
    lo: f64,
    hi: f64,
    d: usize,
) -> Option<(PointD, f64)> {
    let mut lifted: Vec<(PointD, f64)> = Vec::with_capacity(constraints.len() + 2 * d + 1);
    let lift = |normal: &PointD, offset: f64| {
        let norm = normal.norm();
        let mut v = normal.coords().to_vec();
        v.push(norm);
        (PointD::from(v), offset)
    };
    for (n, b) in constraints {
        lifted.push(lift(n, *b));
    }
    // Box sides as explicit constraints so the radius respects them too.
    for i in 0..d {
        let mut n = vec![0.0; d];
        n[i] = 1.0;
        lifted.push(lift(&PointD::from(n.clone()), hi));
        n[i] = -1.0;
        lifted.push(lift(&PointD::from(n), -lo));
    }
    // r ≥ 0.
    let mut rneg = vec![0.0; d + 1];
    rneg[d] = -1.0;
    lifted.push((PointD::from(rneg), 0.0));

    let mut c = vec![0.0; d + 1];
    c[d] = 1.0;
    // The lifted box must cover r's range as well; `hi - lo` bounds any
    // inscribed radius.
    let res = maximize(&PointD::from(c), &lifted, lo - (hi - lo), hi + (hi - lo));
    let x = res.x?;
    let r = x[d];
    if r < -LP_EPS {
        return None;
    }
    Some((PointD::from(&x.coords()[..d]), r.max(0.0)))
}

/// True when the region `{x : normal·x ≤ offset} ∩ [lo,hi]^d` is non-empty.
pub fn feasible(constraints: &[(PointD, f64)], lo: f64, hi: f64, d: usize) -> bool {
    let c = PointD::zeros(d);
    maximize(&c, constraints, lo, hi).status == LpStatus::Optimal
}

/// True when some `x` in the region has `c · x > tol` — the half-space /
/// polytope intersection test behind incremental GIR maintenance: a
/// score hyperplane `c = g(p) − g(p_k)` invalidates a cached region only
/// if it attains a positive value somewhere inside it. (Maintenance
/// tests the cached query point *before* calling, because a positive
/// value there means eviction rather than a shrink — so by the time the
/// solve runs, only the region away from the query is in question.)
pub fn improves_somewhere(
    c: &PointD,
    constraints: &[(PointD, f64)],
    lo: f64,
    hi: f64,
    tol: f64,
) -> bool {
    // Fast path: the objective is non-positive on the whole positive
    // orthant, so it cannot be positive inside `[lo,hi]^d` with lo ≥ 0.
    if lo >= 0.0 && c.coords().iter().all(|&v| v <= tol) {
        return false;
    }
    let res = maximize(c, constraints, lo, hi);
    res.status == LpStatus::Optimal && res.value > tol
}

/// Recursive Seidel solve over raw vectors. Returns a maximizer of
/// `obj · x` over the constraints plus the `[lo,hi]` box, or `None` when
/// infeasible.
fn solve_rec(
    obj: &[f64],
    mut cons: Vec<(Vec<f64>, f64)>,
    lo: f64,
    hi: f64,
    d: usize,
    seed: u64,
) -> Option<Vec<f64>> {
    debug_assert!(d >= 1);
    if d == 1 {
        return solve_1d(obj[0], &cons, lo, hi);
    }
    shuffle(&mut cons, seed);

    // Start from the box corner maximizing the objective.
    let mut x: Vec<f64> = obj
        .iter()
        .map(|&c| if c >= 0.0 { hi } else { lo })
        .collect();

    for i in 0..cons.len() {
        let (a, b) = (&cons[i].0, cons[i].1);
        let lhs: f64 = a.iter().zip(x.iter()).map(|(ai, xi)| ai * xi).sum();
        if lhs <= b + LP_EPS {
            continue; // still optimal
        }
        // The optimum moves onto the hyperplane a·x = b. Eliminate the
        // variable with the largest |a_j| for stability.
        let j = (0..d)
            .max_by(|&p, &q| a[p].abs().partial_cmp(&a[q].abs()).expect("non-NaN"))
            .expect("d >= 1");
        if a[j].abs() < LP_EPS {
            // Degenerate constraint: 0·x ≤ b with b < lhs ⇒ infeasible.
            return None;
        }
        let aj_inv = 1.0 / a[j];
        // Substitution x_j = (b - Σ_{l≠j} a_l x_l) / a_j applied to a
        // (normal', offset') pair in the (d-1)-dim subspace.
        let project = |n: &[f64], off: f64| -> (Vec<f64>, f64) {
            let f = n[j] * aj_inv;
            let mut np: Vec<f64> = Vec::with_capacity(d - 1);
            for l in 0..d {
                if l != j {
                    np.push(n[l] - f * a[l]);
                }
            }
            (np, off - f * b)
        };

        // Previous constraints plus the box sides of the eliminated
        // variable (x_j ∈ [lo,hi] becomes two linear constraints below).
        let mut sub: Vec<(Vec<f64>, f64)> = Vec::with_capacity(i + 2);
        for (n, off) in cons[..i].iter() {
            sub.push(project(n, *off));
        }
        {
            let mut e = vec![0.0; d];
            e[j] = 1.0;
            sub.push(project(&e, hi));
            e[j] = -1.0;
            sub.push(project(&e, -lo));
        }
        let sub_obj = {
            let f = obj[j] * aj_inv;
            let mut o: Vec<f64> = Vec::with_capacity(d - 1);
            for l in 0..d {
                if l != j {
                    o.push(obj[l] - f * a[l]);
                }
            }
            o
        };
        let y = solve_rec(
            &sub_obj,
            sub,
            lo,
            hi,
            d - 1,
            seed.wrapping_add(i as u64 + 1),
        )?;
        // Lift back.
        let mut xi = Vec::with_capacity(d);
        let mut yi = y.iter();
        for l in 0..d {
            if l == j {
                xi.push(0.0); // placeholder
            } else {
                xi.push(*yi.next().expect("d-1 coords"));
            }
        }
        let xj = (b
            - (0..d)
                .filter(|&l| l != j)
                .map(|l| a[l] * xi[l])
                .sum::<f64>())
            * aj_inv;
        xi[j] = xj;
        x = xi;
    }
    Some(x)
}

fn solve_1d(c: f64, cons: &[(Vec<f64>, f64)], lo: f64, hi: f64) -> Option<Vec<f64>> {
    let (mut xlo, mut xhi) = (lo, hi);
    for (a, b) in cons {
        let a = a[0];
        if a.abs() < LP_EPS {
            if *b < -LP_EPS {
                return None;
            }
        } else if a > 0.0 {
            xhi = xhi.min(b / a);
        } else {
            xlo = xlo.max(b / a);
        }
    }
    if xlo > xhi + LP_EPS {
        return None;
    }
    let x = if c >= 0.0 { xhi } else { xlo };
    Some(vec![x.clamp(xlo.min(xhi), xhi.max(xlo))])
}

fn shuffle(v: &mut [(Vec<f64>, f64)], seed: u64) {
    let mut state = seed ^ 0x9E3779B97F4A7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(n: &[f64], b: f64) -> (PointD, f64) {
        (PointD::from(n), b)
    }

    #[test]
    fn unconstrained_box_corner() {
        let r = maximize(&PointD::new(vec![1.0, -2.0]), &[], 0.0, 1.0);
        assert_eq!(r.status, LpStatus::Optimal);
        let x = r.x.unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9 && x[1].abs() < 1e-9);
    }

    #[test]
    fn simple_2d_lp() {
        // max x + y  s.t. x + 2y ≤ 1, 2x + y ≤ 1 within [0,1]^2.
        // Optimum at (1/3, 1/3), value 2/3.
        let cons = [hs(&[1.0, 2.0], 1.0), hs(&[2.0, 1.0], 1.0)];
        let r = maximize(&PointD::new(vec![1.0, 1.0]), &cons, 0.0, 1.0);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.value - 2.0 / 3.0).abs() < 1e-7, "value {}", r.value);
    }

    #[test]
    fn infeasible_lp() {
        // x ≥ 0.8 and x ≤ 0.2 is empty.
        let cons = [hs(&[-1.0, 0.0], -0.8), hs(&[1.0, 0.0], 0.2)];
        let r = maximize(&PointD::new(vec![1.0, 0.0]), &cons, 0.0, 1.0);
        assert_eq!(r.status, LpStatus::Infeasible);
        assert!(!feasible(&cons, 0.0, 1.0, 2));
    }

    #[test]
    fn lp_3d_plane_cut() {
        // max z  s.t. x + y + z ≤ 1 in [0,1]^3 → z = 1 at (0,0,1).
        let cons = [hs(&[1.0, 1.0, 1.0], 1.0)];
        let r = maximize(&PointD::new(vec![0.0, 0.0, 1.0]), &cons, 0.0, 1.0);
        assert!((r.value - 1.0).abs() < 1e-7);
        let x = r.x.unwrap();
        assert!(x[0] + x[1] + x[2] <= 1.0 + 1e-7);
    }

    #[test]
    fn axis_extrema_of_wedge() {
        // GIR-like wedge in 2-d: y ≤ 2x and y ≥ x/2 within the unit box.
        let cons = [hs(&[-2.0, 1.0], 0.0), hs(&[0.5, -1.0], 0.0)];
        let max_x = maximize(&PointD::new(vec![1.0, 0.0]), &cons, 0.0, 1.0);
        assert!((max_x.value - 1.0).abs() < 1e-7);
        let max_y = maximize(&PointD::new(vec![0.0, 1.0]), &cons, 0.0, 1.0);
        assert!((max_y.value - 1.0).abs() < 1e-7);
        // min over x: maximize -x; the wedge touches the origin.
        let min_x = maximize(&PointD::new(vec![-1.0, 0.0]), &cons, 0.0, 1.0);
        assert!(min_x.value.abs() < 1e-7);
    }

    #[test]
    fn chebyshev_center_of_unit_box() {
        let (c, r) = chebyshev_center(&[], 0.0, 1.0, 3).unwrap();
        for i in 0..3 {
            assert!((c[i] - 0.5).abs() < 1e-6);
        }
        assert!((r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn chebyshev_center_of_triangle() {
        // Triangle x ≥ 0, y ≥ 0, x + y ≤ 1: incenter at (t, t) with
        // t = (2 - sqrt(2)) / 2 ≈ 0.2929, radius t·(sqrt 2 − 1)... known
        // inradius r = (a + b − c)/2 for legs 1,1: r = (2 − √2)/2 ≈ 0.2929.
        let cons = [hs(&[1.0, 1.0], 1.0)];
        let (c, r) = chebyshev_center(&cons, 0.0, 1.0, 2).unwrap();
        let expect = (2.0 - 2f64.sqrt()) / 2.0;
        assert!((r - expect).abs() < 1e-6, "r = {r}");
        assert!((c[0] - expect).abs() < 1e-6 && (c[1] - expect).abs() < 1e-6);
    }

    #[test]
    fn chebyshev_center_infeasible() {
        let cons = [hs(&[1.0, 0.0], -0.5)]; // x ≤ -0.5 in [0,1]^2
        assert!(chebyshev_center(&cons, 0.0, 1.0, 2).is_none());
    }

    #[test]
    fn degenerate_zero_normal_constraints() {
        // 0·x ≤ 1 is vacuous; 0·x ≤ -1 is infeasible.
        let vac = [hs(&[0.0, 0.0], 1.0)];
        assert!(feasible(&vac, 0.0, 1.0, 2));
        let bad = [hs(&[0.0, 0.0], -1.0)];
        assert!(!feasible(&bad, 0.0, 1.0, 2));
    }

    #[test]
    fn improves_somewhere_matches_maximize() {
        // Wedge y ≤ 2x, y ≥ x/2: the objective (−1, 1) is positive in the
        // upper part of the wedge, (−1, −1) nowhere in [0,1]^2.
        let cons = [hs(&[-2.0, 1.0], 0.0), hs(&[0.5, -1.0], 0.0)];
        assert!(improves_somewhere(
            &PointD::new(vec![-1.0, 1.0]),
            &cons,
            0.0,
            1.0,
            1e-9
        ));
        assert!(!improves_somewhere(
            &PointD::new(vec![-1.0, -1.0]),
            &cons,
            0.0,
            1.0,
            1e-9
        ));
        // An infeasible region improves nothing.
        let empty = [hs(&[-1.0, 0.0], -0.8), hs(&[1.0, 0.0], 0.2)];
        assert!(!improves_somewhere(
            &PointD::new(vec![1.0, 1.0]),
            &empty,
            0.0,
            1.0,
            1e-9
        ));
    }

    #[test]
    fn lp_5d_simplex() {
        // max Σx s.t. Σx ≤ 0.7 in [0,1]^5.
        let cons = [hs(&[1.0; 5], 0.7)];
        let r = maximize(&PointD::new(vec![1.0; 5]), &cons, 0.0, 1.0);
        assert!((r.value - 0.7).abs() < 1e-7);
    }

    #[test]
    fn lp_matches_vertex_enumeration_2d() {
        // Random-ish 2-d LPs cross-checked against brute-force vertex
        // enumeration over constraint pairs + box corners.
        let cons_sets: Vec<Vec<(PointD, f64)>> = vec![
            vec![
                hs(&[1.0, 3.0], 1.2),
                hs(&[-1.0, 1.0], 0.4),
                hs(&[2.0, -1.0], 1.1),
            ],
            vec![hs(&[1.0, -1.0], 0.0), hs(&[-3.0, 1.0], 0.0)],
        ];
        for cons in &cons_sets {
            let c = PointD::new(vec![0.7, 0.3]);
            let lp = maximize(&c, cons, 0.0, 1.0);
            // Brute force: all intersections of pairs from cons+box.
            let mut all: Vec<(PointD, f64)> = cons.clone();
            all.extend([
                hs(&[1.0, 0.0], 1.0),
                hs(&[-1.0, 0.0], 0.0),
                hs(&[0.0, 1.0], 1.0),
                hs(&[0.0, -1.0], 0.0),
            ]);
            let mut best = f64::NEG_INFINITY;
            for i in 0..all.len() {
                for j in i + 1..all.len() {
                    let (a1, b1) = (&all[i].0, all[i].1);
                    let (a2, b2) = (&all[j].0, all[j].1);
                    let det = a1[0] * a2[1] - a1[1] * a2[0];
                    if det.abs() < 1e-12 {
                        continue;
                    }
                    let x = (b1 * a2[1] - b2 * a1[1]) / det;
                    let y = (a1[0] * b2 - a2[0] * b1) / det;
                    let pt = PointD::new(vec![x, y]);
                    if all.iter().all(|(n, b)| n.dot(&pt) <= b + 1e-9) {
                        best = best.max(c.dot(&pt));
                    }
                }
            }
            assert!(
                (lp.value - best).abs() < 1e-6,
                "lp {} vs brute {}",
                lp.value,
                best
            );
        }
    }
}
