//! Seidel's randomized incremental linear programming.
//!
//! GIR regions are intersections of half-spaces in `d ≤ 8` dimensions, so
//! Seidel's algorithm — expected `O(d! · m)` for `m` constraints — is the
//! right tool for the small LP subproblems the library needs:
//!
//! * per-axis extrema of a region (tight bounding boxes for Monte-Carlo
//!   volume estimation),
//! * Chebyshev centers (robust interior points for the dual transform in
//!   [`crate::halfspace`]),
//! * feasibility / emptiness checks.
//!
//! Constraints are `normal · x ≤ offset`. The solver requires an explicit
//! bounding box to guarantee boundedness; GIR callers pass the query space
//! `[0,1]^d`.
//!
//! ## Zero-copy solving
//!
//! The hot paths (FP node pruning, delta-batch classification) solve
//! thousands of small LPs per query burst, so the solver never copies the
//! caller's constraints: a [`ConsView`] borrows them in whatever layout
//! they already live in (pair slices, [`HalfSpace`] lists, or flat SoA
//! rows), and all recursion-level work happens in a reusable
//! [`LpScratch`] — after warm-up a solve performs no heap allocation at
//! all. The scratch also *warm-starts* the constraint processing order
//! across calls: constraints that were binding in the previous solve are
//! examined first, which keeps Seidel's recursive subproblems small when
//! one region is probed with many related objectives (per-axis extrema,
//! per-insert classification, per-node pruning).

use crate::hyperplane::HalfSpace;
use crate::vector::PointD;
use std::cell::RefCell;

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// A maximizer exists (the feasible set is non-empty; it is always
    /// bounded because of the required bounding box).
    Optimal,
    /// The feasible set is empty (within tolerance).
    Infeasible,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve status.
    pub status: LpStatus,
    /// The maximizer, when `status == Optimal`.
    pub x: Option<PointD>,
    /// The objective value at the maximizer (`f64::NEG_INFINITY` when
    /// infeasible).
    pub value: f64,
}

/// Comparison tolerance for constraint violation. Slightly looser than the
/// geometric epsilon: LP pivoting divides by sub-unit pivots and loses a
/// couple of digits.
const LP_EPS: f64 = 1e-9;

/// Largest supported dimensionality (after the Chebyshev lift). Solution
/// and objective vectors live on the stack below this bound.
const MAX_DIM: usize = 24;

/// Deterministic seed for the initial constraint shuffle.
const LP_SEED: u64 = 0x5EED_1E57;

/// A borrowed, layout-agnostic view of LP constraints `normal · x ≤
/// offset`. No conversion or copying happens at the view boundary — rows
/// are read straight out of the caller's storage.
#[derive(Debug, Clone, Copy)]
pub enum ConsView<'a> {
    /// `(normal, offset)` pairs (the historical layout).
    Pairs(&'a [(PointD, f64)]),
    /// A region's half-space list, viewed directly (provenance ignored).
    Half(&'a [HalfSpace]),
    /// Flat structure-of-arrays rows: `normals[i*d..(i+1)*d]` with
    /// `offsets[i]`.
    Soa {
        /// Row-major normals, `d` values per constraint.
        normals: &'a [f64],
        /// One offset per constraint.
        offsets: &'a [f64],
        /// Row stride.
        d: usize,
    },
}

impl ConsView<'_> {
    /// Number of constraints in the view.
    pub fn len(&self) -> usize {
        match self {
            ConsView::Pairs(p) => p.len(),
            ConsView::Half(h) => h.len(),
            ConsView::Soa { offsets, .. } => offsets.len(),
        }
    }

    /// True when the view holds no constraints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn row(&self, i: usize) -> (&[f64], f64) {
        match self {
            ConsView::Pairs(p) => (p[i].0.coords(), p[i].1),
            ConsView::Half(h) => (h[i].normal.coords(), h[i].offset),
            ConsView::Soa {
                normals,
                offsets,
                d,
            } => (&normals[i * d..(i + 1) * d], offsets[i]),
        }
    }
}

impl<'a> From<&'a [(PointD, f64)]> for ConsView<'a> {
    fn from(p: &'a [(PointD, f64)]) -> Self {
        ConsView::Pairs(p)
    }
}

impl<'a> From<&'a [HalfSpace]> for ConsView<'a> {
    fn from(h: &'a [HalfSpace]) -> Self {
        ConsView::Half(h)
    }
}

/// Random access to constraint rows, implemented by [`ConsView`] (the
/// caller's storage) and by the scratch levels (projected subproblems).
trait Rows {
    fn m(&self) -> usize;
    fn row(&self, i: usize) -> (&[f64], f64);
}

impl Rows for ConsView<'_> {
    #[inline]
    fn m(&self) -> usize {
        self.len()
    }
    #[inline]
    fn row(&self, i: usize) -> (&[f64], f64) {
        ConsView::row(self, i)
    }
}

/// Flat SoA rows inside a scratch level.
struct SoaRows<'a> {
    normals: &'a [f64],
    offsets: &'a [f64],
    d: usize,
}

impl Rows for SoaRows<'_> {
    #[inline]
    fn m(&self) -> usize {
        self.offsets.len()
    }
    #[inline]
    fn row(&self, i: usize) -> (&[f64], f64) {
        (&self.normals[i * self.d..(i + 1) * self.d], self.offsets[i])
    }
}

/// Per-recursion-level buffers for projected subproblem constraints.
#[derive(Debug, Default, Clone)]
struct LevelBuf {
    normals: Vec<f64>,
    offsets: Vec<f64>,
    perm: Vec<u32>,
}

/// The recursive solver's reusable state.
#[derive(Debug, Default)]
struct SolverCore {
    /// One buffer per recursion level below the top.
    levels: Vec<LevelBuf>,
    /// Top-level processing order, warm-started across solves.
    order: Vec<u32>,
    /// Scratch for reordering `order`.
    order_tmp: Vec<u32>,
    /// Constraints that became binding during the current solve.
    binding: Vec<u32>,
}

/// Reusable solver state: recursion buffers, the warm-started constraint
/// order, and the Chebyshev lift arena. Create once per long-lived
/// context (a sweep, a classification pass, a worker thread) and pass to
/// the `*_scratch` entry points; after the first solve of a given shape
/// no allocation happens.
#[derive(Debug, Default)]
pub struct LpScratch {
    core: SolverCore,
    lifted_normals: Vec<f64>,
    lifted_offsets: Vec<f64>,
}

impl LpScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> LpScratch {
        LpScratch::default()
    }
}

thread_local! {
    /// Scratch behind the allocation-per-call-free convenience wrappers.
    static TLS_SCRATCH: RefCell<LpScratch> = RefCell::new(LpScratch::new());
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

fn shuffle_u32(v: &mut [u32], seed: u64) {
    let mut state = seed ^ 0x9E3779B97F4A7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

fn solve_1d<R: Rows>(rows: &R, c: f64, lo: f64, hi: f64) -> Option<f64> {
    let (mut xlo, mut xhi) = (lo, hi);
    for i in 0..rows.m() {
        let (n, b) = rows.row(i);
        let a = n[0];
        if a.abs() < LP_EPS {
            if b < -LP_EPS {
                return None;
            }
        } else if a > 0.0 {
            xhi = xhi.min(b / a);
        } else {
            xlo = xlo.max(b / a);
        }
    }
    if xlo > xhi + LP_EPS {
        return None;
    }
    let x = if c >= 0.0 { xhi } else { xlo };
    Some(x.clamp(xlo.min(xhi), xhi.max(xlo)))
}

/// Recursive Seidel step. Processes `rows` in `order`, maintaining the
/// incumbent in `x[..d]`; on violation, projects the prefix into
/// `bufs[0]` (plus the eliminated variable's box sides) and recurses
/// with `bufs[1..]`. `binding` (top level only) records constraints that
/// forced a recursion, for warm-starting the next solve.
#[allow(clippy::too_many_arguments)]
fn solve_rec<R: Rows>(
    rows: &R,
    order: &[u32],
    obj: &[f64],
    lo: f64,
    hi: f64,
    bufs: &mut [LevelBuf],
    x: &mut [f64],
    seed: u64,
    mut binding: Option<&mut Vec<u32>>,
) -> bool {
    let d = obj.len();
    debug_assert!(d >= 1);
    if d == 1 {
        match solve_1d(rows, obj[0], lo, hi) {
            Some(v) => {
                x[0] = v;
                return true;
            }
            None => return false,
        }
    }

    for (xj, &c) in x[..d].iter_mut().zip(obj.iter()) {
        *xj = if c >= 0.0 { hi } else { lo };
    }

    for (pos, &ri) in order.iter().enumerate() {
        let (a, b) = rows.row(ri as usize);
        let lhs = dot(a, &x[..d]);
        if lhs <= b + LP_EPS {
            continue; // still optimal
        }
        // The optimum moves onto the hyperplane a·x = b. Eliminate the
        // variable with the largest |a_j| for stability.
        let j = (0..d)
            .max_by(|&p, &q| a[p].abs().partial_cmp(&a[q].abs()).expect("non-NaN"))
            .expect("d >= 1");
        if a[j].abs() < LP_EPS {
            // Degenerate constraint: 0·x ≤ b with b < lhs ⇒ infeasible.
            return false;
        }
        if let Some(bind) = binding.as_deref_mut() {
            bind.push(ri);
        }
        let aj_inv = 1.0 / a[j];
        let sd = d - 1;
        let sub_seed = seed.wrapping_add(pos as u64 + 1);

        let (head, tail) = bufs.split_at_mut(1);
        let buf = &mut head[0];
        buf.normals.clear();
        buf.offsets.clear();
        // Substitution x_j = (b − Σ_{l≠j} a_l x_l) / a_j applied to a
        // (normal, offset) pair; the projected row lands in the flat
        // SoA arena in the (d−1)-dim subspace.
        let mut project = |n: &[f64], off: f64| {
            let f = n[j] * aj_inv;
            for l in 0..d {
                if l != j {
                    buf.normals.push(n[l] - f * a[l]);
                }
            }
            buf.offsets.push(off - f * b);
        };
        for &pi in &order[..pos] {
            let (pn, pb) = rows.row(pi as usize);
            project(pn, pb);
        }
        // Box sides of the eliminated variable (x_j ∈ [lo,hi]).
        {
            let mut e = [0.0f64; MAX_DIM];
            e[j] = 1.0;
            project(&e[..d], hi);
            e[j] = -1.0;
            project(&e[..d], -lo);
        }
        let sub_m = buf.offsets.len();
        buf.perm.clear();
        buf.perm.extend(0..sub_m as u32);
        shuffle_u32(&mut buf.perm, sub_seed);

        let mut sub_obj = [0.0f64; MAX_DIM];
        {
            let f = obj[j] * aj_inv;
            let mut w = 0usize;
            for l in 0..d {
                if l != j {
                    sub_obj[w] = obj[l] - f * a[l];
                    w += 1;
                }
            }
        }

        let sub_rows = SoaRows {
            normals: &buf.normals,
            offsets: &buf.offsets,
            d: sd,
        };
        let mut y = [0.0f64; MAX_DIM];
        if !solve_rec(
            &sub_rows,
            &buf.perm,
            &sub_obj[..sd],
            lo,
            hi,
            tail,
            &mut y[..sd],
            sub_seed ^ 0xD1CE,
            None,
        ) {
            return false;
        }
        // Lift back.
        let mut w = 0usize;
        for (l, xl) in x[..d].iter_mut().enumerate() {
            if l == j {
                *xl = 0.0; // placeholder
            } else {
                *xl = y[w];
                w += 1;
            }
        }
        let xj = (b - (0..d).filter(|&l| l != j).map(|l| a[l] * x[l]).sum::<f64>()) * aj_inv;
        x[j] = xj;
    }
    true
}

/// The top-level solve over a [`SolverCore`]: warm-started order,
/// binding-constraint tracking, move-to-front reordering for the next
/// call.
fn solve_top(
    core: &mut SolverCore,
    obj: &[f64],
    cons: &ConsView<'_>,
    lo: f64,
    hi: f64,
    x: &mut [f64],
) -> bool {
    let d = obj.len();
    assert!(
        (1..=MAX_DIM).contains(&d),
        "LP dimensionality {d} outside 1..={MAX_DIM}"
    );
    let m = cons.len();
    if core.levels.len() < d {
        core.levels.resize_with(d, LevelBuf::default);
    }
    if core.order.len() != m {
        core.order.clear();
        core.order.extend(0..m as u32);
        shuffle_u32(&mut core.order, LP_SEED);
    }
    core.binding.clear();
    let ok = solve_rec(
        cons,
        &core.order,
        obj,
        lo,
        hi,
        &mut core.levels,
        x,
        LP_SEED,
        Some(&mut core.binding),
    );
    // Warm start: binding constraints first next time, preserving the
    // relative order of the rest — related follow-up solves then trigger
    // their recursions early, on short constraint prefixes.
    if !core.binding.is_empty() {
        core.order_tmp.clear();
        core.order_tmp.extend_from_slice(&core.binding);
        for &i in core.order.iter() {
            if !core.binding.contains(&i) {
                core.order_tmp.push(i);
            }
        }
        std::mem::swap(&mut core.order, &mut core.order_tmp);
    }
    ok
}

/// Allocation-free maximization of `c · x` over `cons ∩ [lo,hi]^d`:
/// writes the maximizer into `x` (length `c.len()`) and returns the
/// objective value, or `None` when infeasible.
pub fn maximize_scratch(
    scratch: &mut LpScratch,
    c: &[f64],
    cons: ConsView<'_>,
    lo: f64,
    hi: f64,
    x: &mut [f64],
) -> Option<f64> {
    debug_assert_eq!(c.len(), x.len());
    // Every LP feasibility/optimization call in the workspace funnels
    // through here — the one place EXPLAIN and the metrics registry
    // count solves. One relaxed load when observability is off.
    tracing::event!("lp_call");
    if solve_top(&mut scratch.core, c, &cons, lo, hi, x) {
        Some(dot(c, x))
    } else {
        None
    }
}

/// Like [`maximize_scratch`] but discards the maximizer (internal stack
/// buffer), returning only the optimal value.
pub fn max_value_scratch(
    scratch: &mut LpScratch,
    c: &[f64],
    cons: ConsView<'_>,
    lo: f64,
    hi: f64,
) -> Option<f64> {
    let mut x = [0.0f64; MAX_DIM];
    let d = c.len();
    maximize_scratch(scratch, c, cons, lo, hi, &mut x[..d])
}

/// Maximizes `c · x` subject to `normal · x ≤ offset` for every
/// `(normal, offset)` in `constraints`, and `lo ≤ x_i ≤ hi` for all `i`.
///
/// Convenience wrapper over a thread-local [`LpScratch`]; hot callers
/// that control their own lifetime should hold an `LpScratch` and use
/// [`maximize_scratch`] / [`max_value_scratch`] directly.
pub fn maximize(c: &PointD, constraints: &[(PointD, f64)], lo: f64, hi: f64) -> LpResult {
    maximize_view(c, ConsView::Pairs(constraints), lo, hi)
}

/// [`maximize`] over any [`ConsView`] layout.
pub fn maximize_view(c: &PointD, cons: ConsView<'_>, lo: f64, hi: f64) -> LpResult {
    let d = c.dim();
    let mut x = [0.0f64; MAX_DIM];
    let solved = TLS_SCRATCH
        .with(|s| maximize_scratch(&mut s.borrow_mut(), c.coords(), cons, lo, hi, &mut x[..d]));
    match solved {
        Some(value) => LpResult {
            status: LpStatus::Optimal,
            x: Some(PointD::from(&x[..d])),
            value,
        },
        None => LpResult {
            status: LpStatus::Infeasible,
            x: None,
            value: f64::NEG_INFINITY,
        },
    }
}

/// Returns the Chebyshev center of the region `{x : normal·x ≤ offset} ∩
/// [lo,hi]^d` — the center of the largest inscribed ball — together with
/// the ball radius. `None` when the region is empty.
///
/// Solved as an LP in `d+1` variables: maximize `r` subject to
/// `a·x + ‖a‖·r ≤ b` for every half-space (including the box sides).
pub fn chebyshev_center(
    constraints: &[(PointD, f64)],
    lo: f64,
    hi: f64,
    d: usize,
) -> Option<(PointD, f64)> {
    chebyshev_center_view(ConsView::Pairs(constraints), lo, hi, d)
}

/// [`chebyshev_center`] over any [`ConsView`] layout (thread-local
/// scratch).
pub fn chebyshev_center_view(
    cons: ConsView<'_>,
    lo: f64,
    hi: f64,
    d: usize,
) -> Option<(PointD, f64)> {
    TLS_SCRATCH.with(|s| chebyshev_center_scratch(&mut s.borrow_mut(), cons, lo, hi, d))
}

/// [`chebyshev_center`] with an explicit scratch: the lifted constraint
/// system is materialized into the scratch arena (reused across calls)
/// instead of a fresh `Vec` per invocation.
pub fn chebyshev_center_scratch(
    scratch: &mut LpScratch,
    cons: ConsView<'_>,
    lo: f64,
    hi: f64,
    d: usize,
) -> Option<(PointD, f64)> {
    let ld = d + 1;
    assert!(ld <= MAX_DIM, "chebyshev lift exceeds MAX_DIM");
    scratch.lifted_normals.clear();
    scratch.lifted_offsets.clear();
    let m = cons.len();
    scratch.lifted_normals.reserve((m + 2 * d + 1) * ld);
    scratch.lifted_offsets.reserve(m + 2 * d + 1);
    for i in 0..m {
        let (n, b) = cons.row(i);
        let norm = dot(n, n).sqrt();
        scratch.lifted_normals.extend_from_slice(n);
        scratch.lifted_normals.push(norm);
        scratch.lifted_offsets.push(b);
    }
    // Box sides as explicit constraints so the radius respects them too.
    for i in 0..d {
        for sign in [1.0f64, -1.0] {
            for l in 0..d {
                scratch.lifted_normals.push(if l == i { sign } else { 0.0 });
            }
            scratch.lifted_normals.push(1.0);
            scratch
                .lifted_offsets
                .push(if sign > 0.0 { hi } else { -lo });
        }
    }
    // r ≥ 0.
    for _ in 0..d {
        scratch.lifted_normals.push(0.0);
    }
    scratch.lifted_normals.push(-1.0);
    scratch.lifted_offsets.push(0.0);

    let mut obj = [0.0f64; MAX_DIM];
    obj[d] = 1.0;
    let mut x = [0.0f64; MAX_DIM];
    let lifted = ConsView::Soa {
        normals: &scratch.lifted_normals,
        offsets: &scratch.lifted_offsets,
        d: ld,
    };
    // The lifted box must cover r's range as well; `hi − lo` bounds any
    // inscribed radius.
    solve_top(
        &mut scratch.core,
        &obj[..ld],
        &lifted,
        lo - (hi - lo),
        hi + (hi - lo),
        &mut x[..ld],
    )
    .then_some(())?;
    let r = x[d];
    if r < -LP_EPS {
        return None;
    }
    Some((PointD::from(&x[..d]), r.max(0.0)))
}

/// True when the region `cons ∩ [lo,hi]^d` is non-empty.
pub fn feasible(cons: ConsView<'_>, lo: f64, hi: f64, d: usize) -> bool {
    let zeros = [0.0f64; MAX_DIM];
    TLS_SCRATCH
        .with(|s| max_value_scratch(&mut s.borrow_mut(), &zeros[..d], cons, lo, hi))
        .is_some()
}

/// True when some `x` in the region has `c · x > tol` — the half-space /
/// polytope intersection test behind incremental GIR maintenance: a
/// score hyperplane `c = g(p) − g(p_k)` invalidates a cached region only
/// if it attains a positive value somewhere inside it. (Maintenance
/// tests the cached query point *before* calling, because a positive
/// value there means eviction rather than a shrink — so by the time the
/// solve runs, only the region away from the query is in question.)
pub fn improves_somewhere(c: &PointD, cons: ConsView<'_>, lo: f64, hi: f64, tol: f64) -> bool {
    TLS_SCRATCH
        .with(|s| improves_somewhere_scratch(&mut s.borrow_mut(), c.coords(), cons, lo, hi, tol))
}

/// [`improves_somewhere`] with an explicit scratch (allocation-free).
pub fn improves_somewhere_scratch(
    scratch: &mut LpScratch,
    c: &[f64],
    cons: ConsView<'_>,
    lo: f64,
    hi: f64,
    tol: f64,
) -> bool {
    // Fast path: the objective is non-positive on the whole positive
    // orthant, so it cannot be positive inside `[lo,hi]^d` with lo ≥ 0.
    if lo >= 0.0 && c.iter().all(|&v| v <= tol) {
        return false;
    }
    matches!(max_value_scratch(scratch, c, cons, lo, hi), Some(v) if v > tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(n: &[f64], b: f64) -> (PointD, f64) {
        (PointD::from(n), b)
    }

    #[test]
    fn unconstrained_box_corner() {
        let r = maximize(&PointD::new(vec![1.0, -2.0]), &[], 0.0, 1.0);
        assert_eq!(r.status, LpStatus::Optimal);
        let x = r.x.unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9 && x[1].abs() < 1e-9);
    }

    #[test]
    fn simple_2d_lp() {
        // max x + y  s.t. x + 2y ≤ 1, 2x + y ≤ 1 within [0,1]^2.
        // Optimum at (1/3, 1/3), value 2/3.
        let cons = [hs(&[1.0, 2.0], 1.0), hs(&[2.0, 1.0], 1.0)];
        let r = maximize(&PointD::new(vec![1.0, 1.0]), &cons, 0.0, 1.0);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.value - 2.0 / 3.0).abs() < 1e-7, "value {}", r.value);
    }

    #[test]
    fn infeasible_lp() {
        // x ≥ 0.8 and x ≤ 0.2 is empty.
        let cons = [hs(&[-1.0, 0.0], -0.8), hs(&[1.0, 0.0], 0.2)];
        let r = maximize(&PointD::new(vec![1.0, 0.0]), &cons, 0.0, 1.0);
        assert_eq!(r.status, LpStatus::Infeasible);
        assert!(!feasible(ConsView::Pairs(&cons), 0.0, 1.0, 2));
    }

    #[test]
    fn lp_3d_plane_cut() {
        // max z  s.t. x + y + z ≤ 1 in [0,1]^3 → z = 1 at (0,0,1).
        let cons = [hs(&[1.0, 1.0, 1.0], 1.0)];
        let r = maximize(&PointD::new(vec![0.0, 0.0, 1.0]), &cons, 0.0, 1.0);
        assert!((r.value - 1.0).abs() < 1e-7);
        let x = r.x.unwrap();
        assert!(x[0] + x[1] + x[2] <= 1.0 + 1e-7);
    }

    #[test]
    fn axis_extrema_of_wedge() {
        // GIR-like wedge in 2-d: y ≤ 2x and y ≥ x/2 within the unit box.
        let cons = [hs(&[-2.0, 1.0], 0.0), hs(&[0.5, -1.0], 0.0)];
        let max_x = maximize(&PointD::new(vec![1.0, 0.0]), &cons, 0.0, 1.0);
        assert!((max_x.value - 1.0).abs() < 1e-7);
        let max_y = maximize(&PointD::new(vec![0.0, 1.0]), &cons, 0.0, 1.0);
        assert!((max_y.value - 1.0).abs() < 1e-7);
        // min over x: maximize -x; the wedge touches the origin.
        let min_x = maximize(&PointD::new(vec![-1.0, 0.0]), &cons, 0.0, 1.0);
        assert!(min_x.value.abs() < 1e-7);
    }

    #[test]
    fn chebyshev_center_of_unit_box() {
        let (c, r) = chebyshev_center(&[], 0.0, 1.0, 3).unwrap();
        for i in 0..3 {
            assert!((c[i] - 0.5).abs() < 1e-6);
        }
        assert!((r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn chebyshev_center_of_triangle() {
        // Triangle x ≥ 0, y ≥ 0, x + y ≤ 1: incenter at (t, t) with
        // t = (2 - sqrt(2)) / 2 ≈ 0.2929, radius t·(sqrt 2 − 1)... known
        // inradius r = (a + b − c)/2 for legs 1,1: r = (2 − √2)/2 ≈ 0.2929.
        let cons = [hs(&[1.0, 1.0], 1.0)];
        let (c, r) = chebyshev_center(&cons, 0.0, 1.0, 2).unwrap();
        let expect = (2.0 - 2f64.sqrt()) / 2.0;
        assert!((r - expect).abs() < 1e-6, "r = {r}");
        assert!((c[0] - expect).abs() < 1e-6 && (c[1] - expect).abs() < 1e-6);
    }

    #[test]
    fn chebyshev_center_infeasible() {
        let cons = [hs(&[1.0, 0.0], -0.5)]; // x ≤ -0.5 in [0,1]^2
        assert!(chebyshev_center(&cons, 0.0, 1.0, 2).is_none());
    }

    #[test]
    fn degenerate_zero_normal_constraints() {
        // 0·x ≤ 1 is vacuous; 0·x ≤ -1 is infeasible.
        let vac = [hs(&[0.0, 0.0], 1.0)];
        assert!(feasible(ConsView::Pairs(&vac), 0.0, 1.0, 2));
        let bad = [hs(&[0.0, 0.0], -1.0)];
        assert!(!feasible(ConsView::Pairs(&bad), 0.0, 1.0, 2));
    }

    #[test]
    fn improves_somewhere_matches_maximize() {
        // Wedge y ≤ 2x, y ≥ x/2: the objective (−1, 1) is positive in the
        // upper part of the wedge, (−1, −1) nowhere in [0,1]^2.
        let cons = [hs(&[-2.0, 1.0], 0.0), hs(&[0.5, -1.0], 0.0)];
        assert!(improves_somewhere(
            &PointD::new(vec![-1.0, 1.0]),
            ConsView::Pairs(&cons),
            0.0,
            1.0,
            1e-9
        ));
        assert!(!improves_somewhere(
            &PointD::new(vec![-1.0, -1.0]),
            ConsView::Pairs(&cons),
            0.0,
            1.0,
            1e-9
        ));
        // An infeasible region improves nothing.
        let empty = [hs(&[-1.0, 0.0], -0.8), hs(&[1.0, 0.0], 0.2)];
        assert!(!improves_somewhere(
            &PointD::new(vec![1.0, 1.0]),
            ConsView::Pairs(&empty),
            0.0,
            1.0,
            1e-9
        ));
    }

    #[test]
    fn lp_5d_simplex() {
        // max Σx s.t. Σx ≤ 0.7 in [0,1]^5.
        let cons = [hs(&[1.0; 5], 0.7)];
        let r = maximize(&PointD::new(vec![1.0; 5]), &cons, 0.0, 1.0);
        assert!((r.value - 0.7).abs() < 1e-7);
    }

    #[test]
    fn halfspace_view_matches_pairs_view() {
        use crate::hyperplane::Provenance;
        // The same geometry through both layouts must solve identically.
        let pairs = [hs(&[1.0, 2.0], 1.0), hs(&[2.0, 1.0], 1.0)];
        let halves: Vec<HalfSpace> = pairs
            .iter()
            .map(|(n, b)| HalfSpace {
                normal: n.clone(),
                offset: *b,
                provenance: Provenance::NonResult { record_id: 0 },
            })
            .collect();
        let c = PointD::new(vec![1.0, 1.0]);
        let a = maximize(&c, &pairs, 0.0, 1.0);
        let b = maximize_view(&c, ConsView::Half(&halves), 0.0, 1.0);
        assert!((a.value - b.value).abs() < 1e-12);
    }

    #[test]
    fn soa_view_matches_pairs_view() {
        let pairs = [hs(&[1.0, 2.0, 0.5], 1.0), hs(&[2.0, 1.0, -0.3], 1.0)];
        let normals: Vec<f64> = pairs
            .iter()
            .flat_map(|(n, _)| n.coords().to_vec())
            .collect();
        let offsets: Vec<f64> = pairs.iter().map(|(_, b)| *b).collect();
        let c = PointD::new(vec![0.4, 1.0, 0.6]);
        let a = maximize(&c, &pairs, 0.0, 1.0);
        let b = maximize_view(
            &c,
            ConsView::Soa {
                normals: &normals,
                offsets: &offsets,
                d: 3,
            },
            0.0,
            1.0,
        );
        assert!((a.value - b.value).abs() < 1e-12);
    }

    #[test]
    fn warm_started_scratch_stays_correct_across_related_solves() {
        // Re-solving the same region with many objectives (the per-axis
        // extrema pattern) through one scratch must match fresh solves.
        let cons = [
            hs(&[1.0, 3.0], 1.2),
            hs(&[-1.0, 1.0], 0.4),
            hs(&[2.0, -1.0], 1.1),
            hs(&[1.0, 1.0], 1.3),
        ];
        let mut scratch = LpScratch::new();
        for pass in 0..3 {
            for dir in [
                [1.0, 0.0],
                [-1.0, 0.0],
                [0.0, 1.0],
                [0.0, -1.0],
                [0.7, 0.3],
                [-0.5, 0.9],
            ] {
                let mut x = [0.0f64; 2];
                let warm =
                    maximize_scratch(&mut scratch, &dir, ConsView::Pairs(&cons), 0.0, 1.0, &mut x)
                        .unwrap();
                let fresh = maximize(&PointD::from(&dir[..]), &cons, 0.0, 1.0).value;
                assert!(
                    (warm - fresh).abs() < 1e-9,
                    "pass {pass} dir {dir:?}: warm {warm} vs fresh {fresh}"
                );
            }
        }
    }

    #[test]
    fn lp_matches_vertex_enumeration_2d() {
        // Random-ish 2-d LPs cross-checked against brute-force vertex
        // enumeration over constraint pairs + box corners.
        let cons_sets: Vec<Vec<(PointD, f64)>> = vec![
            vec![
                hs(&[1.0, 3.0], 1.2),
                hs(&[-1.0, 1.0], 0.4),
                hs(&[2.0, -1.0], 1.1),
            ],
            vec![hs(&[1.0, -1.0], 0.0), hs(&[-3.0, 1.0], 0.0)],
        ];
        for cons in &cons_sets {
            let c = PointD::new(vec![0.7, 0.3]);
            let lp = maximize(&c, cons, 0.0, 1.0);
            // Brute force: all intersections of pairs from cons+box.
            let mut all: Vec<(PointD, f64)> = cons.clone();
            all.extend([
                hs(&[1.0, 0.0], 1.0),
                hs(&[-1.0, 0.0], 0.0),
                hs(&[0.0, 1.0], 1.0),
                hs(&[0.0, -1.0], 0.0),
            ]);
            let mut best = f64::NEG_INFINITY;
            for i in 0..all.len() {
                for j in i + 1..all.len() {
                    let (a1, b1) = (&all[i].0, all[i].1);
                    let (a2, b2) = (&all[j].0, all[j].1);
                    let det = a1[0] * a2[1] - a1[1] * a2[0];
                    if det.abs() < 1e-12 {
                        continue;
                    }
                    let x = (b1 * a2[1] - b2 * a1[1]) / det;
                    let y = (a1[0] * b2 - a2[0] * b1) / det;
                    let pt = PointD::new(vec![x, y]);
                    if all.iter().all(|(n, b)| n.dot(&pt) <= b + 1e-9) {
                        best = best.max(c.dot(&pt));
                    }
                }
            }
            assert!(
                (lp.value - best).abs() < 1e-6,
                "lp {} vs brute {}",
                lp.value,
                best
            );
        }
    }
}
