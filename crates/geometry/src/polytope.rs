//! V-representation polytopes (vertex sets) with exact volumes.

use crate::hull::{ConvexHull, HullError};
use crate::vector::PointD;

/// A full-dimensional convex polytope given by its vertex set.
#[derive(Debug, Clone)]
pub struct Polytope {
    hull: ConvexHull,
}

impl Polytope {
    /// Builds the polytope spanned by `vertices`. Inputs that are not
    /// full-dimensional yield `Err` (their volume is zero by definition;
    /// callers that only need a volume can treat that error as 0).
    pub fn from_vertices(vertices: &[PointD]) -> Result<Polytope, HullError> {
        Ok(Polytope {
            hull: ConvexHull::build(vertices)?,
        })
    }

    /// Exact Euclidean volume (simplex fan around an interior point).
    pub fn volume(&self) -> f64 {
        self.hull.volume()
    }

    /// True when `x` is inside or on the polytope.
    pub fn contains(&self, x: &PointD, tol: f64) -> bool {
        self.hull.contains(x, tol)
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.hull.dim()
    }

    /// The extreme points (deduplicated hull vertices).
    pub fn vertices(&self) -> Vec<PointD> {
        self.hull
            .vertex_indices()
            .into_iter()
            .map(|i| self.hull.points()[i].clone())
            .collect()
    }

    /// Axis-aligned bounding box as `(low, high)` corner points.
    pub fn bounding_box(&self) -> (PointD, PointD) {
        let d = self.dim();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for v in self.vertices() {
            for i in 0..d {
                lo[i] = lo[i].min(v[i]);
                hi[i] = hi[i].max(v[i]);
            }
        }
        (PointD::from(lo), PointD::from(hi))
    }

    /// The underlying hull (facet access for advanced callers).
    pub fn hull(&self) -> &ConvexHull {
        &self.hull
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[f64]) -> PointD {
        PointD::from(v)
    }

    #[test]
    fn triangle_area() {
        let poly =
            Polytope::from_vertices(&[p(&[0.0, 0.0]), p(&[1.0, 0.0]), p(&[0.0, 1.0])]).unwrap();
        assert!((poly.volume() - 0.5).abs() < 1e-12);
        assert!(poly.contains(&p(&[0.2, 0.2]), 1e-9));
        assert!(!poly.contains(&p(&[0.8, 0.8]), 1e-9));
    }

    #[test]
    fn octahedron_volume() {
        // Cross-polytope with vertices ±e_i has volume 2^d / d! = 8/6 in 3d.
        let mut vs = Vec::new();
        for i in 0..3 {
            vs.push(PointD::basis(3, i));
            vs.push(PointD::basis(3, i).scale(-1.0));
        }
        let poly = Polytope::from_vertices(&vs).unwrap();
        assert!((poly.volume() - 8.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_flat_is_error() {
        let vs = [
            p(&[0.0, 0.0, 0.0]),
            p(&[1.0, 0.0, 0.0]),
            p(&[0.0, 1.0, 0.0]),
            p(&[1.0, 1.0, 0.0]),
        ];
        assert!(Polytope::from_vertices(&vs).is_err());
    }

    #[test]
    fn bounding_box_of_shifted_square() {
        let poly = Polytope::from_vertices(&[
            p(&[0.2, 0.3]),
            p(&[0.7, 0.3]),
            p(&[0.7, 0.9]),
            p(&[0.2, 0.9]),
        ])
        .unwrap();
        let (lo, hi) = poly.bounding_box();
        assert!(lo.approx_eq(&p(&[0.2, 0.3]), 1e-12));
        assert!(hi.approx_eq(&p(&[0.7, 0.9]), 1e-12));
    }

    #[test]
    fn vertices_exclude_interior_inputs() {
        let poly = Polytope::from_vertices(&[
            p(&[0.0, 0.0]),
            p(&[1.0, 0.0]),
            p(&[0.0, 1.0]),
            p(&[0.2, 0.2]),
        ])
        .unwrap();
        assert_eq!(poly.vertices().len(), 3);
    }
}
