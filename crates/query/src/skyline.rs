//! BBS skyline computation resuming from the retained BRS state.
//!
//! BBS \[26\] retrieves entries in a monotone order and prunes everything
//! dominated by already-found skyline members. The paper's adaptation
//! (§5.1): instead of nearest-neighbor distance to the top corner, the
//! retained BRS heap is popped in decreasing *maxscore* order — any
//! monotone preference works for BBS correctness — so skyline search
//! continues exactly where top-k search stopped, re-using every page BRS
//! already fetched.

use crate::brs::{HeapEntry, SearchState};
use gir_geometry::dominance::SkylineSet;
use gir_rtree::{NodeEntries, RTree, RTreeError, Record};
use std::collections::HashSet;

/// Computes the skyline of `D \ R` (all non-result records), consuming
/// the retained BRS search state.
///
/// `result_ids` identifies the top-k result records, which are excluded
/// from the skyline (but naturally never prune anything: they are not
/// inserted).
pub fn bbs_skyline(
    tree: &RTree,
    mut state: SearchState,
    result_ids: &HashSet<u64>,
) -> Result<SkylineSet<Record>, RTreeError> {
    let mut sky: SkylineSet<Record> = SkylineSet::new();
    while let Some(entry) = state.heap.pop() {
        match entry {
            HeapEntry::Rec { record, .. } => {
                if result_ids.contains(&record.id) || sky.dominated(&record.attrs) {
                    continue;
                }
                let attrs = record.attrs.clone();
                sky.insert(attrs, record);
            }
            HeapEntry::Node { page, mbb, .. } => {
                // An entry whose *top corner* is dominated cannot contain
                // any skyline record — prune it without fetching the page.
                if let Some(m) = &mbb {
                    if sky.dominated(m.top_corner()) {
                        continue;
                    }
                }
                let node = tree.read_node(page)?;
                match node.entries {
                    NodeEntries::Internal(children) => {
                        for (child_mbb, child) in children {
                            if !sky.dominated(child_mbb.top_corner()) {
                                // Keep popping in a monotone order: the
                                // top-corner coordinate sum is a monotone
                                // preference, which is all BBS needs.
                                let maxscore = child_mbb.top_corner().coords().iter().sum();
                                state.heap.push(HeapEntry::Node {
                                    page: child,
                                    maxscore,
                                    mbb: Some(child_mbb),
                                });
                            }
                        }
                    }
                    NodeEntries::Leaf(records) => {
                        for record in records {
                            if result_ids.contains(&record.id) || sky.dominated(&record.attrs) {
                                continue;
                            }
                            let attrs = record.attrs.clone();
                            sky.insert(attrs, record);
                        }
                    }
                }
            }
        }
    }
    Ok(sky)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brs::brs_topk;
    use crate::naive::{naive_skyline, naive_topk};
    use crate::score::ScoringFunction;
    use gir_geometry::vector::PointD;
    use gir_rtree::RTree;
    use gir_storage::{MemPageStore, PageStore, PAGE_SIZE};
    use std::sync::Arc;

    fn pseudo_records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Record::new(i as u64, (0..d).map(|_| next()).collect::<Vec<_>>()))
            .collect()
    }

    fn check_skyline_matches_naive(n: usize, d: usize, k: usize, seed: u64, w: Vec<f64>) {
        let recs = pseudo_records(n, d, seed);
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let tree = RTree::bulk_load(store, &recs).unwrap();
        let f = ScoringFunction::linear(d);
        let w = PointD::new(w);
        let (res, state) = brs_topk(&tree, &f, &w, k).unwrap();
        let result_ids: HashSet<u64> = res.ids().into_iter().collect();

        let sky = bbs_skyline(&tree, state, &result_ids).unwrap();
        let mut got: Vec<u64> = sky.iter().map(|(_, r)| r.id).collect();
        got.sort_unstable();

        let non_result: Vec<Record> = recs
            .iter()
            .filter(|r| !result_ids.contains(&r.id))
            .cloned()
            .collect();
        let mut expect: Vec<u64> = naive_skyline(&non_result).iter().map(|r| r.id).collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "n={n} d={d} k={k}");
    }

    #[test]
    fn skyline_matches_naive_2d() {
        check_skyline_matches_naive(2000, 2, 10, 21, vec![0.5, 0.5]);
    }

    #[test]
    fn skyline_matches_naive_3d() {
        check_skyline_matches_naive(1500, 3, 20, 22, vec![0.8, 0.3, 0.5]);
    }

    #[test]
    fn skyline_matches_naive_5d() {
        check_skyline_matches_naive(800, 5, 5, 23, vec![0.2, 0.9, 0.4, 0.6, 0.1]);
    }

    #[test]
    fn skyline_excludes_result_records() {
        let recs = pseudo_records(500, 2, 24);
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let tree = RTree::bulk_load(store, &recs).unwrap();
        let f = ScoringFunction::linear(2);
        let w = PointD::new(vec![0.6, 0.4]);
        let (res, state) = brs_topk(&tree, &f, &w, 15).unwrap();
        let result_ids: HashSet<u64> = res.ids().into_iter().collect();
        let sky = bbs_skyline(&tree, state, &result_ids).unwrap();
        for (_, r) in sky.iter() {
            assert!(!result_ids.contains(&r.id));
        }
    }

    #[test]
    fn skyline_members_upper_bound_kth_overtakers() {
        // Every record that could overtake the k-th result under *some*
        // weight vector is dominated by (or is) a skyline member — the SP
        // safety property (§5.1). Spot-check: for random weights, the
        // best-scoring non-result record is never strictly better than
        // every skyline member.
        let recs = pseudo_records(1000, 3, 25);
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let tree = RTree::bulk_load(store, &recs).unwrap();
        let f = ScoringFunction::linear(3);
        let w = PointD::new(vec![0.5, 0.7, 0.2]);
        let (res, state) = brs_topk(&tree, &f, &w, 10).unwrap();
        let result_ids: HashSet<u64> = res.ids().into_iter().collect();
        let sky = bbs_skyline(&tree, state, &result_ids).unwrap();
        let non_result: Vec<&Record> = recs
            .iter()
            .filter(|r| !result_ids.contains(&r.id))
            .collect();
        for probe in [
            vec![0.9, 0.1, 0.1],
            vec![0.1, 0.9, 0.2],
            vec![0.33, 0.33, 0.33],
        ] {
            let wp = PointD::new(probe);
            let best_any = non_result
                .iter()
                .map(|r| f.score(&wp, &r.attrs))
                .fold(f64::NEG_INFINITY, f64::max);
            let best_sky = sky
                .iter()
                .map(|(_, r)| f.score(&wp, &r.attrs))
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(best_sky >= best_any - 1e-12);
        }
    }

    #[test]
    fn skyline_of_topk_equals_naive_after_nonlinear_scoring() {
        // BBS correctness is independent of the (monotone) scoring used
        // by the preceding BRS run (§7.2).
        let recs = pseudo_records(700, 4, 26);
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let tree = RTree::bulk_load(store, &recs).unwrap();
        let f = ScoringFunction::mixed4();
        let w = PointD::new(vec![0.4, 0.6, 0.2, 0.8]);
        let (res, state) = brs_topk(&tree, &f, &w, 12).unwrap();
        let naive = naive_topk(&recs, &f, &w, 12);
        assert_eq!(res.ids(), naive.ids());
        let result_ids: HashSet<u64> = res.ids().into_iter().collect();
        let sky = bbs_skyline(&tree, state, &result_ids).unwrap();
        let non_result: Vec<Record> = recs
            .iter()
            .filter(|r| !result_ids.contains(&r.id))
            .cloned()
            .collect();
        let mut got: Vec<u64> = sky.iter().map(|(_, r)| r.id).collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = naive_skyline(&non_result).iter().map(|r| r.id).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}
