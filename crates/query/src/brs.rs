//! BRS: branch-and-bound ranked search (top-k) over the R\*-tree.
//!
//! BRS \[32\] organizes visited R-tree entries in a max-heap keyed by
//! *maxscore* (the score of the MBB's top corner — an upper bound for any
//! record beneath the entry) and pops entries in decreasing bound order.
//! Because the heap key upper-bounds everything still in the heap, the
//! records pop out in exact decreasing score order; the search stops once
//! `k` records have been reported. BRS is I/O optimal (§2).
//!
//! For GIR computation the search state is *retained* (§3.3): the heap
//! (with all not-yet-popped node and record entries) seeds Phase 2, and
//! the record entries still in the heap are exactly the set `T` of
//! non-result records already fetched into memory.

use crate::score::ScoringFunction;
use gir_geometry::vector::PointD;
use gir_rtree::{Mbb, NodeEntries, RTree, RTreeError, Record};
use gir_storage::PageId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: an R-tree node awaiting expansion, or a record awaiting
/// reporting. Ordered by score bound (max-heap), ties broken
/// deterministically (records before nodes, then by id).
#[derive(Debug, Clone)]
pub enum HeapEntry {
    /// An R-tree node with its maxscore bound.
    Node {
        /// Page id of the node.
        page: PageId,
        /// Upper bound on the score of any record below this node.
        maxscore: f64,
        /// The node's MBB as recorded in its parent entry (`None` only for
        /// the root). Phase 2 algorithms use it to prune nodes *without*
        /// fetching them (paper §6.2: "if the MBB of the node lies
        /// completely below the interim facets, we prune it").
        mbb: Option<Mbb>,
    },
    /// A data record with its exact score.
    Rec {
        /// The record.
        record: Record,
        /// Its exact score under the current query.
        score: f64,
    },
}

impl HeapEntry {
    /// The heap key (score bound).
    pub fn key(&self) -> f64 {
        match self {
            HeapEntry::Node { maxscore, .. } => *maxscore,
            HeapEntry::Rec { score, .. } => *score,
        }
    }

    fn tiebreak(&self) -> (u8, u64) {
        match self {
            // Records first on equal keys: their key is exact.
            HeapEntry::Rec { record, .. } => (1, record.id),
            HeapEntry::Node { page, .. } => (0, *page),
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key()
            .total_cmp(&other.key())
            .then_with(|| self.tiebreak().cmp(&other.tiebreak()))
    }
}

/// The retained BRS search state, consumed by Phase 2 (§3.3).
#[derive(Debug, Clone)]
pub struct SearchState {
    /// The search heap at termination: unexpanded nodes plus encountered
    /// non-result records, all keyed by (max)score.
    pub heap: BinaryHeap<HeapEntry>,
    /// Leaf pages fetched during the search (their records are already in
    /// the heap; Phase 2 never re-reads them).
    pub leaf_pages_read: u64,
}

impl SearchState {
    /// The set `T`: non-result records already fetched into memory by BRS
    /// (the record entries remaining in the heap).
    pub fn encountered_records(&self) -> impl Iterator<Item = &Record> {
        self.heap.iter().filter_map(|e| match e {
            HeapEntry::Rec { record, .. } => Some(record),
            HeapEntry::Node { .. } => None,
        })
    }
}

/// A top-k result: records in decreasing score order with their scores.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// `(record, score)` pairs, best first.
    pub ranked: Vec<(Record, f64)>,
}

impl TopKResult {
    /// The k-th (lowest-ranked) result record — the pivot of Phase 2.
    pub fn kth(&self) -> &Record {
        &self.ranked.last().expect("non-empty result").0
    }

    /// Result records only, best first.
    pub fn records(&self) -> Vec<Record> {
        self.ranked.iter().map(|(r, _)| r.clone()).collect()
    }

    /// Result size.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when no records were found (empty dataset).
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }

    /// The ids of the result records.
    pub fn ids(&self) -> Vec<u64> {
        self.ranked.iter().map(|(r, _)| r.id).collect()
    }
}

/// Runs BRS, returning the top-k result and the retained search state.
///
/// When the dataset holds fewer than `k` records, all of them are
/// returned.
pub fn brs_topk(
    tree: &RTree,
    scoring: &ScoringFunction,
    weights: &PointD,
    k: usize,
) -> Result<(TopKResult, SearchState), RTreeError> {
    assert!(k >= 1, "k must be at least 1");
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let mut ranked: Vec<(Record, f64)> = Vec::with_capacity(k);
    let mut leaf_pages_read = 0u64;
    let mut scores: Vec<f64> = Vec::new();

    heap.push(HeapEntry::Node {
        page: tree.root_page(),
        maxscore: f64::INFINITY,
        mbb: None,
    });

    while let Some(entry) = heap.pop() {
        match entry {
            HeapEntry::Rec { record, score } => {
                ranked.push((record, score));
                if ranked.len() == k {
                    break;
                }
            }
            HeapEntry::Node { page, .. } => {
                let node = tree.read_node(page)?;
                match node.entries {
                    NodeEntries::Internal(children) => {
                        for (mbb, child) in children {
                            let maxscore = scoring.maxscore(weights, &mbb);
                            heap.push(HeapEntry::Node {
                                page: child,
                                maxscore,
                                mbb: Some(mbb),
                            });
                        }
                    }
                    NodeEntries::Leaf(records) => {
                        leaf_pages_read += 1;
                        // One fused scoring pass over the leaf's records
                        // (columnar multiply-add for linear scoring).
                        scoring.scores_into(weights, &records, &mut scores);
                        for (record, &score) in records.into_iter().zip(scores.iter()) {
                            heap.push(HeapEntry::Rec { record, score });
                        }
                    }
                }
            }
        }
    }

    Ok((
        TopKResult { ranked },
        SearchState {
            heap,
            leaf_pages_read,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_topk;
    use gir_storage::{MemPageStore, PageStore, PAGE_SIZE};
    use std::sync::Arc;

    fn pseudo_records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Record::new(i as u64, (0..d).map(|_| next()).collect::<Vec<_>>()))
            .collect()
    }

    fn build(n: usize, d: usize, seed: u64) -> (Vec<Record>, RTree) {
        let recs = pseudo_records(n, d, seed);
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let tree = RTree::bulk_load(store, &recs).unwrap();
        (recs, tree)
    }

    #[test]
    fn brs_matches_naive_topk() {
        let (recs, tree) = build(3000, 3, 11);
        let f = ScoringFunction::linear(3);
        for (wi, k) in [(0usize, 1usize), (1, 10), (2, 57)] {
            let w = PointD::new(match wi {
                0 => vec![0.5, 0.5, 0.5],
                1 => vec![0.9, 0.1, 0.3],
                _ => vec![0.05, 0.8, 0.4],
            });
            let (got, _) = brs_topk(&tree, &f, &w, k).unwrap();
            let expect = naive_topk(&recs, &f, &w, k);
            assert_eq!(got.ids(), expect.ids(), "k={k}");
        }
    }

    #[test]
    fn brs_scores_are_decreasing() {
        let (_, tree) = build(1000, 2, 12);
        let f = ScoringFunction::linear(2);
        let w = PointD::new(vec![0.6, 0.5]);
        let (res, _) = brs_topk(&tree, &f, &w, 25).unwrap();
        for pair in res.ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(res.len(), 25);
    }

    #[test]
    fn brs_with_nonlinear_scoring() {
        let (recs, tree) = build(2000, 4, 13);
        for f in [ScoringFunction::polynomial4(), ScoringFunction::mixed4()] {
            let w = PointD::new(vec![0.7, 0.2, 0.9, 0.4]);
            let (got, _) = brs_topk(&tree, &f, &w, 20).unwrap();
            let expect = naive_topk(&recs, &f, &w, 20);
            assert_eq!(got.ids(), expect.ids());
        }
    }

    #[test]
    fn retained_state_holds_all_unreported_encounters() {
        let (_, tree) = build(500, 2, 14);
        let f = ScoringFunction::linear(2);
        let w = PointD::new(vec![0.5, 0.5]);
        let (res, state) = brs_topk(&tree, &f, &w, 10).unwrap();
        let result_ids: std::collections::HashSet<u64> = res.ids().into_iter().collect();
        // No result record lingers in the retained heap, and T is
        // non-empty for any non-trivial search.
        for r in state.encountered_records() {
            assert!(!result_ids.contains(&r.id));
        }
        assert!(state.encountered_records().count() > 0);
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let (recs, tree) = build(40, 2, 15);
        let f = ScoringFunction::linear(2);
        let w = PointD::new(vec![0.3, 0.7]);
        let (res, _) = brs_topk(&tree, &f, &w, 100).unwrap();
        assert_eq!(res.len(), recs.len());
    }

    #[test]
    fn io_optimality_reads_few_pages() {
        // BRS on a bulk-loaded tree must read far fewer pages than a scan.
        let (_, tree) = build(20_000, 2, 16);
        let f = ScoringFunction::linear(2);
        let w = PointD::new(vec![0.5, 0.5]);
        tree.store().reset_stats();
        let _ = brs_topk(&tree, &f, &w, 10).unwrap();
        let brs_reads = tree.store().stats().reads;
        tree.store().reset_stats();
        tree.scan_all().unwrap();
        let scan_reads = tree.store().stats().reads;
        assert!(
            brs_reads * 10 < scan_reads,
            "BRS reads {brs_reads} vs scan {scan_reads}"
        );
    }

    #[test]
    fn heap_entry_ordering_prefers_records_on_ties() {
        let rec = HeapEntry::Rec {
            record: Record::new(1, vec![0.5, 0.5]),
            score: 1.0,
        };
        let node = HeapEntry::Node {
            page: 9,
            maxscore: 1.0,
            mbb: None,
        };
        assert!(rec > node);
    }
}
