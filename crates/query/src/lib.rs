//! # gir-query
//!
//! Query-processing substrates the GIR algorithms build on (paper §2–§3):
//!
//! * [`score`] — linear and monotone non-linear scoring functions,
//! * [`brs`] — BRS branch-and-bound top-k [Tao et al. 2007]: I/O-optimal
//!   top-k over the R\*-tree. Crucially for GIR computation, BRS *retains*
//!   its search heap and every record it encountered but did not report
//!   (§3.3) — Phase 2 resumes from that state,
//! * [`skyline`] — BBS branch-and-bound skyline [Papadias et al. 2005],
//!   adapted to pop the retained BRS heap in decreasing maxscore order
//!   (§5.1),
//! * [`naive`] — linear-scan oracles used by tests and as the paper's
//!   "scan the entire dataset" strawman baselines.

pub mod brs;
pub mod naive;
pub mod score;
pub mod skyline;
pub mod soa;

pub use brs::{brs_topk, HeapEntry, SearchState, TopKResult};
pub use naive::{naive_skyline, naive_topk};
pub use rtree_reexports::*;
pub use score::{QueryVector, ScoringFunction, Transform};
pub use skyline::bbs_skyline;
pub use soa::{RecordBlocks, SOA_BLOCK};

mod rtree_reexports {
    pub use gir_rtree::Record;
}
