//! Chunked structure-of-arrays record storage with fused scan kernels.
//!
//! Hot scans over candidate sets (skyline maintenance, prune-index
//! lookups, score ranking) are memory-bound when records live as
//! individual heap-boxed points. [`RecordBlocks`] stores records
//! column-major in fixed-size chunks so the per-dimension inner loops
//! run over contiguous `f64` slices — the compiler autovectorizes the
//! fused dominance (`ge`/`gt` mask accumulation) and linear-score
//! (multiply-add) kernels — and each block carries its per-dimension
//! *corner maxima* (the block's MBB top corner), so whole blocks are
//! skipped when their corner cannot dominate the probe or cannot beat a
//! score bound.

use gir_geometry::vector::PointD;
use gir_rtree::Record;
use std::collections::HashMap;

/// Records per block. Masks for one block live on the stack and one
/// block's column fits comfortably in L1.
pub const SOA_BLOCK: usize = 256;

#[derive(Debug, Clone)]
struct Block {
    ids: Vec<u64>,
    /// `cols[j][i]` = attribute `j` of lane `i`.
    cols: Vec<Vec<f64>>,
    /// Per-dimension maximum over live lanes — the block's MBB top
    /// corner, precomputed so scans can skip the block outright.
    corner: Vec<f64>,
}

impl Block {
    fn new(d: usize) -> Block {
        Block {
            ids: Vec::with_capacity(SOA_BLOCK),
            cols: vec![Vec::with_capacity(SOA_BLOCK); d],
            corner: vec![f64::NEG_INFINITY; d],
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn refresh_corner(&mut self) {
        for (j, col) in self.cols.iter().enumerate() {
            self.corner[j] = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        }
    }
}

/// A chunked column-major record store (see module docs).
#[derive(Debug, Clone, Default)]
pub struct RecordBlocks {
    d: usize,
    blocks: Vec<Block>,
    /// id → (block, lane). Lanes move on `remove` (swap-remove); the
    /// index tracks them.
    index: HashMap<u64, (u32, u32)>,
}

impl RecordBlocks {
    /// An empty store for `d`-dimensional records.
    pub fn new(d: usize) -> RecordBlocks {
        RecordBlocks {
            d,
            blocks: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Builds a store from a record slice.
    pub fn from_records(d: usize, records: &[Record]) -> RecordBlocks {
        let mut rb = RecordBlocks::new(d);
        for r in records {
            rb.push(r);
        }
        rb
    }

    /// Attribute dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True when `id` is stored.
    pub fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// The stored attribute point of `id`.
    pub fn get(&self, id: u64) -> Option<PointD> {
        let &(b, l) = self.index.get(&id)?;
        let block = &self.blocks[b as usize];
        Some(PointD::from(
            block.cols.iter().map(|c| c[l as usize]).collect::<Vec<_>>(),
        ))
    }

    /// Appends a record (ids are assumed unique; a duplicate id would
    /// shadow its predecessor in the index).
    pub fn push(&mut self, rec: &Record) {
        debug_assert_eq!(rec.attrs.dim(), self.d);
        if self.blocks.last().is_none_or(|b| b.len() >= SOA_BLOCK) {
            self.blocks.push(Block::new(self.d));
        }
        let bi = self.blocks.len() - 1;
        let block = &mut self.blocks[bi];
        let lane = block.len();
        block.ids.push(rec.id);
        for (j, col) in block.cols.iter_mut().enumerate() {
            let v = rec.attrs[j];
            col.push(v);
            if v > block.corner[j] {
                block.corner[j] = v;
            }
        }
        self.index.insert(rec.id, (bi as u32, lane as u32));
    }

    /// Removes a record by id (swap-remove within its block). Returns
    /// true when it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some((bi, lane)) = self.index.remove(&id) else {
            return false;
        };
        let (bi, lane) = (bi as usize, lane as usize);
        let block = &mut self.blocks[bi];
        block.ids.swap_remove(lane);
        for col in block.cols.iter_mut() {
            col.swap_remove(lane);
        }
        if lane < block.len() {
            let moved = block.ids[lane];
            self.index.insert(moved, (bi as u32, lane as u32));
        }
        block.refresh_corner();
        if block.ids.is_empty() {
            self.blocks.swap_remove(bi);
            if bi < self.blocks.len() {
                for (lane, &mid) in self.blocks[bi].ids.iter().enumerate() {
                    self.index.insert(mid, (bi as u32, lane as u32));
                }
            }
        }
        true
    }

    /// Materializes every stored record whose id passes `keep`, in
    /// storage order — the same order [`RecordBlocks::linear_scores`]
    /// emits, so filtered outputs of the two stay index-aligned.
    pub fn materialize_if(&self, mut keep: impl FnMut(u64) -> bool) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for block in &self.blocks {
            for lane in 0..block.len() {
                let id = block.ids[lane];
                if keep(id) {
                    out.push(Record::new(
                        id,
                        block.cols.iter().map(|c| c[lane]).collect::<Vec<_>>(),
                    ));
                }
            }
        }
        out
    }

    /// Materializes every stored record.
    pub fn materialize(&self) -> Vec<Record> {
        self.materialize_if(|_| true)
    }

    /// Fused dominance scan: some stored record (whose id is **not** in
    /// `except`) dominates `p`. Blocks whose corner does not
    /// component-wise upper-bound `p` are skipped without touching their
    /// lanes.
    pub fn dominates_any_except(&self, p: &[f64], except: &[u64]) -> bool {
        debug_assert_eq!(p.len(), self.d);
        let mut ge = [false; SOA_BLOCK];
        let mut gt = [false; SOA_BLOCK];
        for block in &self.blocks {
            // Corner gate: a dominator needs ≥ p on every dimension.
            if block.corner.iter().zip(p).any(|(&c, &pj)| c < pj) {
                continue;
            }
            let n = block.len();
            ge[..n].fill(true);
            gt[..n].fill(false);
            for (col, &pj) in block.cols.iter().zip(p) {
                for i in 0..n {
                    let v = col[i];
                    ge[i] &= v >= pj;
                    gt[i] |= v > pj;
                }
            }
            for i in 0..n {
                if ge[i] && gt[i] && !except.contains(&block.ids[i]) {
                    return true;
                }
            }
        }
        false
    }

    /// Fused dominance scan in the other direction: ids of stored
    /// records that `p` dominates.
    pub fn dominated_by(&self, p: &[f64], out: &mut Vec<u64>) {
        debug_assert_eq!(p.len(), self.d);
        let mut le = [false; SOA_BLOCK];
        let mut lt = [false; SOA_BLOCK];
        for block in &self.blocks {
            let n = block.len();
            le[..n].fill(true);
            lt[..n].fill(false);
            for (col, &pj) in block.cols.iter().zip(p) {
                for i in 0..n {
                    let v = col[i];
                    le[i] &= v <= pj;
                    lt[i] |= v < pj;
                }
            }
            for i in 0..n {
                if le[i] && lt[i] {
                    out.push(block.ids[i]);
                }
            }
        }
    }

    /// Fused linear-score kernel: emits `(id, w · attrs)` for every
    /// stored record, in storage order (see
    /// [`RecordBlocks::materialize_if`]). The multiply-add inner loop
    /// runs column-major over contiguous slices.
    pub fn linear_scores(&self, w: &[f64], mut emit: impl FnMut(u64, f64)) {
        debug_assert_eq!(w.len(), self.d);
        let mut acc = [0.0f64; SOA_BLOCK];
        for block in &self.blocks {
            let n = block.len();
            acc[..n].fill(0.0);
            for (col, &wj) in block.cols.iter().zip(w) {
                for (a, &v) in acc[..n].iter_mut().zip(col) {
                    *a += wj * v;
                }
            }
            for (&id, &score) in block.ids.iter().zip(&acc[..n]) {
                emit(id, score);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gir_geometry::dominance::dominates;

    fn pseudo_records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Record::new(i as u64, (0..d).map(|_| next()).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn roundtrip_and_lookup() {
        let recs = pseudo_records(700, 3, 9);
        let rb = RecordBlocks::from_records(3, &recs);
        assert_eq!(rb.len(), 700);
        assert!(rb.blocks.len() >= 2, "must chunk past one block");
        for r in &recs {
            assert!(rb.contains(r.id));
            assert_eq!(rb.get(r.id).unwrap(), r.attrs);
        }
        let mut back = rb.materialize();
        back.sort_by_key(|r| r.id);
        assert_eq!(back.len(), recs.len());
        for (a, b) in back.iter().zip(&recs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.attrs, b.attrs);
        }
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let recs = pseudo_records(600, 2, 10);
        let mut rb = RecordBlocks::from_records(2, &recs);
        // Remove every third record, including block-boundary lanes.
        for r in recs.iter().step_by(3) {
            assert!(rb.remove(r.id));
            assert!(!rb.remove(r.id), "double remove must fail");
        }
        assert_eq!(rb.len(), 600 - 200);
        for (i, r) in recs.iter().enumerate() {
            if i % 3 == 0 {
                assert!(!rb.contains(r.id));
            } else {
                assert_eq!(rb.get(r.id).unwrap(), r.attrs, "id {}", r.id);
            }
        }
    }

    #[test]
    fn dominance_kernels_match_naive() {
        let recs = pseudo_records(500, 3, 11);
        let rb = RecordBlocks::from_records(3, &recs);
        let probes = pseudo_records(40, 3, 12);
        for p in &probes {
            let naive_dom = recs.iter().any(|r| dominates(&r.attrs, &p.attrs));
            assert_eq!(
                rb.dominates_any_except(p.attrs.coords(), &[]),
                naive_dom,
                "probe {:?}",
                p.attrs
            );
            let mut got: Vec<u64> = Vec::new();
            rb.dominated_by(p.attrs.coords(), &mut got);
            got.sort_unstable();
            let mut expect: Vec<u64> = recs
                .iter()
                .filter(|r| dominates(&p.attrs, &r.attrs))
                .map(|r| r.id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn except_list_masks_dominators() {
        let recs = vec![
            Record::new(1, vec![0.9, 0.9]),
            Record::new(2, vec![0.3, 0.2]),
        ];
        let rb = RecordBlocks::from_records(2, &recs);
        let p = [0.5, 0.5];
        assert!(rb.dominates_any_except(&p, &[]));
        // The only dominator is excluded: no dominance.
        assert!(!rb.dominates_any_except(&p, &[1]));
    }

    #[test]
    fn linear_scores_match_dot_products() {
        let recs = pseudo_records(300, 4, 13);
        let rb = RecordBlocks::from_records(4, &recs);
        let w = [0.3, 0.9, 0.1, 0.6];
        let mut got: HashMap<u64, f64> = HashMap::new();
        rb.linear_scores(&w, |id, s| {
            got.insert(id, s);
        });
        assert_eq!(got.len(), recs.len());
        for r in &recs {
            let expect: f64 = r
                .attrs
                .coords()
                .iter()
                .zip(w.iter())
                .map(|(a, b)| a * b)
                .sum();
            assert!((got[&r.id] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn corner_gate_stays_sound_after_removals() {
        // Removing the block maximum must refresh the corner, or the
        // gate would wrongly skip blocks.
        let mut rb = RecordBlocks::new(2);
        rb.push(&Record::new(1, vec![0.95, 0.95]));
        rb.push(&Record::new(2, vec![0.6, 0.7]));
        rb.remove(1);
        // Record 2 dominates (0.5, 0.5); a stale corner of 0.95 would
        // still pass, but the refreshed one must too.
        assert!(rb.dominates_any_except(&[0.5, 0.5], &[]));
        assert!(!rb.dominates_any_except(&[0.65, 0.65], &[]));
    }
}
