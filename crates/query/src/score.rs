//! Scoring functions.
//!
//! The paper's default is the linear score `S(p,q) = q · p` (§3.1). §7.2
//! extends SP-based GIR computation to monotone functions of the form
//! `S(p,q) = Σ w_i · g_i(p_i)`: since each condition `S(p,q') ≥ S(p',q')`
//! is still linear in the *weights*, the GIR remains a half-space
//! intersection over transformed attributes. The experiments (Fig 19) use
//! a "Polynomial" and a "Mixed" instance, both reproduced here.

use gir_geometry::vector::PointD;
use gir_rtree::Mbb;
use serde::{Deserialize, Serialize};

/// Per-dimension monotone increasing transform `g_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transform {
    /// `g(x) = x`.
    Linear,
    /// `g(x) = x^n` for `n ≥ 1` (monotone on `[0,1]`).
    Power(u32),
    /// `g(x) = e^x`.
    Exp,
    /// `g(x) = ln(max(x, 1e-6))` — clamped away from `ln 0`; the paper
    /// uses `log x` on `[0,1]`-normalized HOTEL attributes (Fig 19).
    Log,
    /// `g(x) = √x`.
    Sqrt,
}

impl Transform {
    /// Applies the transform.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Transform::Linear => x,
            Transform::Power(n) => x.powi(*n as i32),
            Transform::Exp => x.exp(),
            Transform::Log => x.max(1e-6).ln(),
            Transform::Sqrt => x.max(0.0).sqrt(),
        }
    }
}

/// A monotone scoring function `S(p, q) = Σ w_i · g_i(p_i)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScoringFunction {
    transforms: Vec<Transform>,
}

impl ScoringFunction {
    /// The linear scoring function in `d` dimensions (the paper default).
    pub fn linear(d: usize) -> Self {
        ScoringFunction {
            transforms: vec![Transform::Linear; d],
        }
    }

    /// A custom per-dimension monotone function.
    pub fn new(transforms: Vec<Transform>) -> Self {
        ScoringFunction { transforms }
    }

    /// The paper's "Polynomial" function for `d = 4`:
    /// `w1·x1^4 + w2·x2^3 + w3·x3^2 + w4·x4` (Fig 19).
    pub fn polynomial4() -> Self {
        ScoringFunction {
            transforms: vec![
                Transform::Power(4),
                Transform::Power(3),
                Transform::Power(2),
                Transform::Power(1),
            ],
        }
    }

    /// The paper's "Mixed" function for `d = 4`:
    /// `w1·x1^2 + w2·e^{x2} + w3·ln x3 + w4·√x4` (Fig 19).
    pub fn mixed4() -> Self {
        ScoringFunction {
            transforms: vec![
                Transform::Power(2),
                Transform::Exp,
                Transform::Log,
                Transform::Sqrt,
            ],
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.transforms.len()
    }

    /// The per-dimension transforms, in dimension order. This is the
    /// function's full definition — wire encodings serialize these (the
    /// [`ScoringFunction::fingerprint`] hash is explicitly not
    /// wire-stable) and rebuild the function with
    /// [`ScoringFunction::new`].
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// True when every transform is the identity: CP and FP rely on convex
    /// hull properties that only hold for linear scoring (§7.2).
    pub fn is_linear(&self) -> bool {
        self.transforms
            .iter()
            .all(|t| matches!(t, Transform::Linear))
    }

    /// The transformed attribute vector `g(p) = (g_1(p_1), …, g_d(p_d))`.
    /// GIR half-spaces for non-linear functions are built over these.
    pub fn transform_point(&self, p: &PointD) -> PointD {
        debug_assert_eq!(p.dim(), self.dim());
        PointD::from(
            p.coords()
                .iter()
                .zip(self.transforms.iter())
                .map(|(&x, t)| t.apply(x))
                .collect::<Vec<_>>(),
        )
    }

    /// The score `S(p, q)`.
    #[inline]
    pub fn score(&self, weights: &PointD, p: &PointD) -> f64 {
        debug_assert_eq!(weights.dim(), self.dim());
        weights
            .coords()
            .iter()
            .zip(p.coords().iter())
            .zip(self.transforms.iter())
            .map(|((&w, &x), t)| w * t.apply(x))
            .sum()
    }

    /// A 64-bit hash of the function (its per-dimension transforms)
    /// for in-process routing — serving-layer caches pick a shard by
    /// it. Not stable across Rust releases (std `DefaultHasher`); do
    /// not persist or exchange it. Entry matching always compares the
    /// full function, never this value.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.transforms.hash(&mut h);
        h.finish()
    }

    /// The BRS *maxscore* bound of an MBB: since every `g_i` is increasing
    /// and weights are non-negative, the top corner maximizes the score
    /// over the box (paper §2).
    #[inline]
    pub fn maxscore(&self, weights: &PointD, mbb: &Mbb) -> f64 {
        self.score(weights, mbb.top_corner())
    }

    /// Scores a batch of records into `out` (cleared first). The linear
    /// case runs a fused multiply-add loop with no transform dispatch per
    /// attribute — the leaf-scan kernel of BRS and the columnar scans.
    pub fn scores_into(&self, weights: &PointD, records: &[gir_rtree::Record], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(records.len());
        if self.is_linear() {
            let w = weights.coords();
            out.extend(records.iter().map(|r| {
                r.attrs
                    .coords()
                    .iter()
                    .zip(w)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            }));
        } else {
            out.extend(records.iter().map(|r| self.score(weights, &r.attrs)));
        }
    }
}

/// A top-k query vector: non-negative weights in `[0,1]^d` (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryVector {
    /// The weight vector `q = (w_1, …, w_d)`.
    pub weights: PointD,
}

impl QueryVector {
    /// Creates a query vector, validating the `[0,1]` weight range.
    pub fn new(weights: impl Into<PointD>) -> Self {
        let weights = weights.into();
        assert!(
            weights.coords().iter().all(|&w| (0.0..=1.0).contains(&w)),
            "query weights must lie in [0,1]"
        );
        QueryVector { weights }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.weights.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_score_is_dot_product() {
        let f = ScoringFunction::linear(2);
        let q = PointD::new(vec![0.4, 0.6]);
        let p = PointD::new(vec![0.54, 0.5]);
        assert!((f.score(&q, &p) - (0.4 * 0.54 + 0.6 * 0.5)).abs() < 1e-12);
        assert!(f.is_linear());
    }

    #[test]
    fn figure3a_scores() {
        // Figure 3(a): q = (0.4, 0.6), scores .516, .488, .418, .4.
        let f = ScoringFunction::linear(2);
        let q = PointD::new(vec![0.4, 0.6]);
        let expect = [
            (vec![0.54, 0.5], 0.516),
            (vec![0.5, 0.48], 0.488),
            (vec![0.52, 0.35], 0.418),
            (vec![0.4, 0.4], 0.4),
        ];
        for (attrs, s) in expect {
            assert!((f.score(&q, &PointD::from(attrs)) - s).abs() < 1e-9);
        }
    }

    #[test]
    fn transforms_are_monotone_increasing() {
        for t in [
            Transform::Linear,
            Transform::Power(4),
            Transform::Exp,
            Transform::Log,
            Transform::Sqrt,
        ] {
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let v = t.apply(i as f64 / 20.0);
                assert!(v >= prev, "{t:?} not monotone at {i}");
                prev = v;
            }
        }
    }

    #[test]
    fn maxscore_upper_bounds_members() {
        let f = ScoringFunction::mixed4();
        let q = PointD::new(vec![0.3, 0.9, 0.1, 0.5]);
        let mbb = Mbb {
            lo: PointD::new(vec![0.1, 0.2, 0.3, 0.4]),
            hi: PointD::new(vec![0.5, 0.6, 0.7, 0.8]),
        };
        let bound = f.maxscore(&q, &mbb);
        // Sample points inside the box.
        for a in [0.1, 0.3, 0.5] {
            for b in [0.2, 0.6] {
                let p = PointD::new(vec![a, b, 0.55, 0.62]);
                assert!(f.score(&q, &p) <= bound + 1e-12);
            }
        }
    }

    #[test]
    fn transform_point_matches_score() {
        // S(p,q) must equal q · g(p).
        let f = ScoringFunction::polynomial4();
        let q = PointD::new(vec![0.2, 0.4, 0.6, 0.8]);
        let p = PointD::new(vec![0.9, 0.5, 0.3, 0.7]);
        let g = f.transform_point(&p);
        assert!((f.score(&q, &p) - q.dot(&g)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "query weights")]
    fn out_of_range_weights_rejected() {
        let _ = QueryVector::new(vec![0.5, 1.5]);
    }

    #[test]
    fn log_clamps_at_zero() {
        assert!(Transform::Log.apply(0.0).is_finite());
    }
}
