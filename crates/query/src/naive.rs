//! Linear-scan oracles.
//!
//! These are the "scan the entire dataset" baselines the paper argues
//! against (§3.3) — quadratic or sort-based reference implementations used
//! to validate BRS/BBS and, in the benches, to quantify the speedups.

use crate::brs::TopKResult;
use crate::score::ScoringFunction;
use gir_geometry::dominance::skyline_indices;
use gir_geometry::vector::PointD;
use gir_rtree::Record;

/// Exact top-k by scoring every record and sorting.
pub fn naive_topk(
    records: &[Record],
    scoring: &ScoringFunction,
    weights: &PointD,
    k: usize,
) -> TopKResult {
    let mut scored: Vec<(Record, f64)> = records
        .iter()
        .map(|r| (r.clone(), scoring.score(weights, &r.attrs)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.id.cmp(&b.0.id)));
    scored.truncate(k);
    TopKResult { ranked: scored }
}

/// Exact skyline by pairwise dominance filtering.
pub fn naive_skyline(records: &[Record]) -> Vec<Record> {
    let points: Vec<PointD> = records.iter().map(|r| r.attrs.clone()).collect();
    skyline_indices(&points)
        .into_iter()
        .map(|i| records[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(rows: &[(u64, &[f64])]) -> Vec<Record> {
        rows.iter().map(|(id, a)| Record::new(*id, *a)).collect()
    }

    #[test]
    fn naive_topk_orders_by_score() {
        let data = recs(&[
            (0, &[0.54, 0.5]),
            (1, &[0.5, 0.48]),
            (2, &[0.52, 0.35]),
            (3, &[0.4, 0.4]),
        ]);
        let f = ScoringFunction::linear(2);
        let w = PointD::new(vec![0.4, 0.6]);
        let r = naive_topk(&data, &f, &w, 4);
        assert_eq!(r.ids(), vec![0, 1, 2, 3]); // Figure 3(a) order
        assert_eq!(r.kth().id, 3);
    }

    #[test]
    fn naive_topk_truncates() {
        let data = recs(&[(0, &[0.9, 0.9]), (1, &[0.1, 0.1]), (2, &[0.5, 0.5])]);
        let f = ScoringFunction::linear(2);
        let w = PointD::new(vec![0.5, 0.5]);
        assert_eq!(naive_topk(&data, &f, &w, 2).ids(), vec![0, 2]);
    }

    #[test]
    fn naive_skyline_filters_dominated() {
        let data = recs(&[
            (0, &[0.9, 0.1]),
            (1, &[0.5, 0.5]),
            (2, &[0.1, 0.9]),
            (3, &[0.4, 0.4]), // dominated by 1
        ]);
        let sky = naive_skyline(&data);
        let ids: Vec<u64> = sky.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
