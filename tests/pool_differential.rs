//! The pool differential harness: every parallel fan-out in the
//! workspace must be **bit-identical** to its sequential fallback.
//!
//! `stealpool::configure_threads` is process-global, so this binary
//! owns it exclusively: every test funnels through [`with_pool`], which
//! serializes pool-policy changes behind one mutex (Cargo runs each
//! integration-test file as its own process, so no other test binary
//! can race these overrides).
//!
//! Covered, over S ∈ {1, 2, 4, 8} shards and random update
//! interleavings:
//!
//! * `gir_sharded` / `gir_star_sharded` (via `ShardedDataset::gir` /
//!   `gir_star`): same ranked ids, bitwise-equal scores, identical
//!   half-space sequence (normals, offsets, provenance, order) and
//!   Phase-2 stats whether the per-shard sweeps run inline or on the
//!   work-stealing pool — completion order must never leak into the
//!   merged `(score, id)` tie order.
//! * `ShardedGirCache::apply_batch` (via `GirServer::apply_updates`):
//!   identical `UpdateReport`, identical per-slot maintenance-counter
//!   totals, and identical follow-up responses when the per-shard
//!   passes fan out.
//! * The EXPLAIN capture hand-off: a traced sharded miss must attribute
//!   all shards in its report even when the per-shard spans were opened
//!   on pool workers.

mod common;

use common::oracle::{assert_bit_identical, records};
use gir::core::{Method, RegionKind};
use gir::prelude::*;
use gir::query::naive_topk;
use gir::serve::MaintenanceMode;
use gir::shard::{ShardedDataset, ShardedServerConfig};
use std::sync::{Arc, Mutex};

/// Serializes every pool-policy override in this binary. `threads = 0`
/// forces the sequential fallback; `threads ≥ 2` forces the pool on
/// regardless of the machine's core count (the whole point: the
/// differential must hold even on a 1-core CI runner).
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    static POOL_LOCK: Mutex<()> = Mutex::new(());
    let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    stealpool::configure_threads(threads);
    let out = f();
    stealpool::reset_threads();
    out
}

const PAR_THREADS: usize = 4;

/// One xorshift-driven update interleaving step: mostly inserts, with
/// deletes picking arbitrary live records.
fn churn(data: &mut ShardedDataset, live: &mut Vec<Record>, rng: &mut u64, next_id: &mut u64) {
    for _ in 0..4 {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        if *rng % 10 < 6 || live.len() < 40 {
            let attrs: Vec<f64> = (0..data.dim())
                .map(|j| {
                    let mut s = rng.rotate_left(j as u32 + 1) | 1;
                    s ^= s << 13;
                    s ^= s >> 7;
                    (s >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect();
            let rec = Record::new(*next_id, attrs);
            *next_id += 1;
            data.insert(rec.clone()).unwrap();
            live.push(rec);
        } else {
            let idx = (*rng as usize / 10) % live.len();
            let victim = live.swap_remove(idx);
            assert!(data.delete(victim.id, &victim.attrs).unwrap());
        }
    }
}

#[test]
fn parallel_sharded_sweeps_match_sequential_bit_for_bit() {
    let d = 3;
    let scoring = ScoringFunction::linear(d);
    let queries = [
        vec![0.55, 0.62, 0.48],
        vec![0.9, 0.15, 0.4],
        vec![0.33, 0.33, 0.34],
    ];
    for s in [1usize, 2, 4, 8] {
        let mut live = records(500, d, 0xD1F * s as u64);
        let mut data = ShardedDataset::build(d, &live, s, Placement::Hash).unwrap();
        let mut rng = 0xBEEFu64 | 1;
        let mut next_id = 5_000_000u64;
        for round in 0..3 {
            if round > 0 {
                churn(&mut data, &mut live, &mut rng, &mut next_id);
            }
            for (qi, w) in queries.iter().enumerate() {
                let q = QueryVector::new(w.clone());
                for k in [1usize, 5] {
                    let seq = with_pool(0, || {
                        data.gir(&scoring, &q, k, Method::FacetPruning).unwrap()
                    });
                    let par = with_pool(PAR_THREADS, || {
                        data.gir(&scoring, &q, k, Method::FacetPruning).unwrap()
                    });
                    assert_bit_identical(
                        &seq,
                        &par,
                        &format!("gir S={s} round={round} q={qi} k={k}"),
                    );

                    let seq = with_pool(0, || {
                        data.gir_star(&scoring, &q, k, Method::FacetPruning)
                            .unwrap()
                    });
                    let par = with_pool(PAR_THREADS, || {
                        data.gir_star(&scoring, &q, k, Method::FacetPruning)
                            .unwrap()
                    });
                    assert_bit_identical(
                        &seq,
                        &par,
                        &format!("gir_star S={s} round={round} q={qi} k={k}"),
                    );

                    // The oracle never lies: the parallel ranked ids are
                    // the true top-k.
                    let truth = naive_topk(&live, &scoring, &PointD::new(w.clone()), k);
                    assert_eq!(par.result.ids(), truth.ids(), "S={s} round={round} q={qi}");
                }
            }
        }
    }
}

fn build_server(data: &[Record], d: usize) -> GirServer {
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, data).unwrap();
    GirServer::new(
        tree,
        ScoringFunction::linear(d),
        ServerConfig {
            threads: 1,
            shards: 8,
            shard_capacity: 16,
            maintenance: MaintenanceMode::DeltaRepair,
            ..ServerConfig::default()
        },
    )
}

#[test]
fn parallel_apply_batch_matches_sequential() {
    let d = 3;
    let data = records(900, d, 0xAB5);
    // Two identical servers; only the pool policy during apply differs.
    let warm: Vec<TopKRequest> = (0..40)
        .map(|i| {
            let j = 0.0005 * (i % 11) as f64;
            let w = vec![0.55 + j, 0.6 - j, 0.45 + j / 2.0];
            if i % 2 == 0 {
                TopKRequest::new(w, 6)
            } else {
                TopKRequest::new(w, 6).kind(RegionKind::GirStar)
            }
        })
        .collect();
    let servers: Vec<GirServer> = (0..2)
        .map(|_| {
            let srv = build_server(&data, d);
            let out = with_pool(0, || srv.run_batch(&warm));
            assert!(out.stats.hits + out.stats.misses == warm.len());
            srv
        })
        .collect();
    assert_eq!(
        servers[0].cache_stats().entries,
        servers[1].cache_stats().entries,
        "identical warmup must cache identically"
    );

    // Three rounds of churn: a dominating insert (shrinks everything),
    // a contributor-ish delete (exercises repair), a mediocre insert.
    let mut rng = 0x77u64 | 1;
    for round in 0..3 {
        let mut updates = Vec::new();
        let jitter = round as f64 * 2e-4;
        updates.push(Update::Insert(Record::new(
            8_000_000 + round,
            vec![0.7 + jitter, 0.68 - jitter, 0.66],
        )));
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let victim = &data[(rng as usize / 7) % data.len()];
        updates.push(Update::Delete {
            id: victim.id,
            attrs: victim.attrs.clone(),
        });
        updates.push(Update::Insert(Record::new(
            8_500_000 + round,
            vec![0.3 + jitter, 0.2, 0.35],
        )));

        let seq = with_pool(0, || servers[0].apply_updates(&updates).unwrap());
        let par = with_pool(PAR_THREADS, || servers[1].apply_updates(&updates).unwrap());
        assert_eq!(seq, par, "round {round}: UpdateReport diverged");

        // The seqlock-bracketed maintenance counters must agree slot by
        // slot — the parallel pass opens each shard's epoch on whatever
        // worker runs it, but the sums are policy-independent.
        let a = servers[0].maintenance_snapshot();
        let b = servers[1].maintenance_snapshot();
        assert_eq!(
            a.totals(),
            b.totals(),
            "round {round}: slot totals diverged"
        );

        // And the surviving cache serves the same answers.
        let out_a = with_pool(0, || servers[0].run_batch(&warm));
        let out_b = with_pool(0, || servers[1].run_batch(&warm));
        for (i, (ra, rb)) in out_a.responses.iter().zip(&out_b.responses).enumerate() {
            assert_eq!(ra.ids, rb.ids, "round {round}: response {i} diverged");
        }
    }
}

#[test]
fn explain_attributes_all_shards_under_forced_pool() {
    let d = 3;
    let data = records(3_000, d, 0xE7);
    for kind in [RegionKind::Gir, RegionKind::GirStar] {
        let server = ShardedGirServer::build(
            d,
            &data,
            ScoringFunction::linear(d),
            ShardedServerConfig {
                threads: 1,
                data_shards: 4,
                placement: Placement::Hash,
                ..ShardedServerConfig::default()
            },
        )
        .unwrap();
        let req = TopKRequest::new(vec![0.55, 0.62, 0.48], 6)
            .kind(kind)
            .explain();
        let out = with_pool(PAR_THREADS, || server.run_batch(std::slice::from_ref(&req)));
        let resp = &out.responses[0];
        assert!(
            !resp.from_cache,
            "{}: first request must miss",
            kind.label()
        );
        let report = resp.explain.as_ref().expect("explain requested");
        // Per-shard spans were opened on pool workers; the capture
        // hand-off must still graft them into this request's tree in
        // shard order.
        let mut shards: Vec<u64> = report.per_shard_us.iter().map(|(s, _)| *s).collect();
        shards.sort_unstable();
        assert_eq!(shards, vec![0, 1, 2, 3], "{}", kind.label());
    }
}

#[test]
fn forced_pool_reports_parallel_policy() {
    with_pool(PAR_THREADS, || {
        assert_eq!(stealpool::effective_threads(), PAR_THREADS);
        assert!(
            stealpool::global().is_some(),
            "configure_threads(4) must enable the pool even on 1 core"
        );
    });
    with_pool(0, || {
        assert!(stealpool::global().is_none(), "0 forces sequential");
    });
}
