//! The planner differential harness: the adaptive miss-path planner
//! must be **invisible in results** — it may only change *when* work
//! happens, never *what* comes back.
//!
//! Two tiers:
//!
//! * Engine level: for every Phase-2 method × region kind, the three
//!   dispatchable plans over one dataset — cold (`GirEngine::gir`),
//!   indexed (`gir_indexed`), and the degenerate one-view sharded
//!   fan-out — return the same ranked ids with **bit-identical score
//!   patterns**, and (for SP) the same half-space *set*: normals,
//!   offsets and facet provenance bitwise-equal, only the enumeration
//!   order free (tree traversal vs skyline-mirror order). CP's hull
//!   snapshot and FP's reduced facet set come from path-dependent
//!   candidate snapshots, so they are held to the established standard
//!   of the prune-index/shard differentials: point-set equivalence
//!   under sampled membership with boundary tolerance. The reuse
//!   dispatch (second indexed call) must be fully bit-identical to the
//!   recompute, order included. This includes the
//!   d ∈ {5, 6} planner-stress mixes where the paths' costs diverge the
//!   most.
//! * Serve level (proptest): a planner-dispatched server and four
//!   `force_path` oracle servers replay identical Zipf-skewed traffic
//!   interleaved with skyline-targeted churn bursts
//!   (`gir_datagen::planner_stress`) and must produce identical
//!   responses at every step, for S ∈ {1, 4}. At S = 1 every forced
//!   server is pinned to its path; at S = 4 only the sharded plan is
//!   feasible and infeasible forces must fall back (counted, not
//!   crashed).

use gir::core::{GirEngine, GirOutput, Method, PruneIndex, RegionKind, ShardView};
use gir::datagen::planner_stress::{high_d_mix, skyline_churn, zipfian_queries, ChurnOp};
use gir::prelude::*;
use gir::serve::{MaintenanceMode, MissPath};
use proptest::prelude::*;
use std::sync::Arc;

const METHODS: [Method; 3] = [
    Method::SkylinePruning,
    Method::ConvexHullPruning,
    Method::FacetPruning,
];

const KINDS: [RegionKind; 2] = [RegionKind::Gir, RegionKind::GirStar];

fn build_tree(recs: &[Record]) -> RTree {
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    RTree::bulk_load(store, recs).unwrap()
}

/// Bitwise equality of two GIR outputs: ranked ids, score bit patterns,
/// the exact half-space sequence with facet provenance. Any divergence
/// between miss paths shows up here.
fn assert_bit_identical(a: &GirOutput, b: &GirOutput, label: &str) {
    assert_eq!(a.result.ids(), b.result.ids(), "{label}: ids diverged");
    let bits = |out: &GirOutput| -> Vec<u64> {
        out.result.ranked.iter().map(|(_, s)| s.to_bits()).collect()
    };
    assert_eq!(bits(a), bits(b), "{label}: score bits diverged");
    assert_eq!(
        a.region.halfspaces.len(),
        b.region.halfspaces.len(),
        "{label}: half-space count diverged"
    );
    for (i, (ha, hb)) in a
        .region
        .halfspaces
        .iter()
        .zip(&b.region.halfspaces)
        .enumerate()
    {
        assert_eq!(
            ha.provenance, hb.provenance,
            "{label}: provenance diverged at half-space {i}"
        );
        assert_eq!(
            ha.offset.to_bits(),
            hb.offset.to_bits(),
            "{label}: offset bits diverged at half-space {i}"
        );
        let na: Vec<u64> = ha.normal.coords().iter().map(|c| c.to_bits()).collect();
        let nb: Vec<u64> = hb.normal.coords().iter().map(|c| c.to_bits()).collect();
        assert_eq!(na, nb, "{label}: normal bits diverged at half-space {i}");
    }
}

/// Canonical halfspace encoding: `(provenance, offset bits, normal
/// bits)`, sorted — equality means the same boundary set regardless of
/// which order the dispatch enumerated it in.
fn canonical_halfspaces(out: &GirOutput) -> Vec<(String, u64, Vec<u64>)> {
    let mut v: Vec<(String, u64, Vec<u64>)> = out
        .region
        .halfspaces
        .iter()
        .map(|h| {
            (
                format!("{:?}", h.provenance),
                h.offset.to_bits(),
                h.normal.coords().iter().map(|c| c.to_bits()).collect(),
            )
        })
        .collect();
    v.sort();
    v
}

/// Sampled point-set equivalence with boundary tolerance (the CP
/// standard from the prune-index differential): membership may only
/// disagree within 1e-6 of some boundary facet.
fn assert_regions_equivalent(a: &GirOutput, b: &GirOutput, d: usize, seed: &mut u64, label: &str) {
    for _ in 0..40 {
        let wp = PointD::from(
            (0..d)
                .map(|_| {
                    *seed ^= *seed << 13;
                    *seed ^= *seed >> 7;
                    *seed ^= *seed << 17;
                    (*seed >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect::<Vec<f64>>(),
        );
        if a.region.contains(&wp) != b.region.contains(&wp) {
            let margin: f64 = a
                .region
                .halfspaces
                .iter()
                .chain(&b.region.halfspaces)
                .map(|h| h.slack(&wp))
                .fold(f64::INFINITY, |acc, v| acc.min(v.abs()));
            assert!(
                margin < 1e-6,
                "{label}: regions disagree at {wp:?} (margin {margin})"
            );
        }
    }
}

/// Computes one query through each dispatchable plan and demands
/// agreement. The indexed plan runs twice (recompute, then a second
/// call that may reuse the shared Phase-2 system) so both indexed
/// labels are covered.
fn check_paths_agree(
    tree: &RTree,
    scoring: &ScoringFunction,
    q: &QueryVector,
    k: usize,
    method: Method,
    kind: RegionKind,
    label: &str,
) {
    let engine = GirEngine::with_scoring(tree, scoring.clone());
    let index = PruneIndex::new();
    let run_cold = || match kind {
        RegionKind::Gir => engine.gir(q, k, method),
        RegionKind::GirStar => engine.gir_star(q, k, method),
    };
    let run_indexed = || match kind {
        RegionKind::Gir => engine.gir_indexed(q, k, method, &index),
        RegionKind::GirStar => engine.gir_star_indexed(q, k, method, &index),
    };
    let run_sharded = || {
        let view = ShardView {
            tree,
            index: &index,
        };
        match kind {
            RegionKind::Gir => GirEngine::gir_sharded(&[view], scoring, q, k, method),
            RegionKind::GirStar => GirEngine::gir_star_sharded(&[view], scoring, q, k, method),
        }
    };
    let cold = run_cold().unwrap();
    let recompute = run_indexed().unwrap();
    let reuse = run_indexed().unwrap();
    let sharded = run_sharded().unwrap();

    // Ranked ids and score bits: exact on every path, every method.
    let scores = |out: &GirOutput| -> Vec<(u64, u64)> {
        out.result
            .ranked
            .iter()
            .map(|(r, s)| (r.id, s.to_bits()))
            .collect()
    };
    for (alt, name) in [
        (&recompute, "indexed_recompute"),
        (&reuse, "indexed_reuse"),
        (&sharded, "sharded"),
    ] {
        assert_eq!(
            scores(&cold),
            scores(alt),
            "{label}/{name}: ranked (id, score-bits) diverged"
        );
    }
    // Recompute vs reuse share one dispatch: fully bit-identical,
    // half-space order included.
    assert_bit_identical(&recompute, &reuse, &format!("{label}/reuse-vs-recompute"));

    match method {
        Method::SkylinePruning => {
            // SP: one half-space per pruned candidate, no reduction —
            // the same set, bit for bit.
            let base = canonical_halfspaces(&cold);
            assert_eq!(
                base,
                canonical_halfspaces(&recompute),
                "{label}/indexed: half-space set diverged"
            );
            assert_eq!(
                base,
                canonical_halfspaces(&sharded),
                "{label}/sharded: half-space set diverged"
            );
        }
        _ => {
            // CP / FP reduce the boundary from path-dependent candidate
            // snapshots (hull of the index's skyline mirror, tie-graze
            // facet drops): syntactic sets may differ, the region may
            // not.
            let mut seed = 0x5EED_0001u64 | 1;
            assert_regions_equivalent(
                &cold,
                &recompute,
                scoring.dim(),
                &mut seed,
                &format!("{label}/indexed"),
            );
            assert_regions_equivalent(
                &cold,
                &sharded,
                scoring.dim(),
                &mut seed,
                &format!("{label}/sharded"),
            );
        }
    }
}

#[test]
fn every_miss_path_is_bit_identical_at_the_engine_level() {
    let d = 3;
    let data = gir::datagen::synthetic(gir::datagen::Distribution::Anticorrelated, 500, d, 21);
    let tree = build_tree(&data);
    let scoring = ScoringFunction::linear(d);
    for q in zipfian_queries(4, d, 4, 1.1, 0.01, 0.05, 33) {
        let qv = QueryVector::new(q.coords().to_vec());
        for method in METHODS {
            for kind in KINDS {
                for k in [1usize, 6] {
                    check_paths_agree(
                        &tree,
                        &scoring,
                        &qv,
                        k,
                        method,
                        kind,
                        &format!("{}/{} k={k}", method.label(), kind.label()),
                    );
                }
            }
        }
    }
}

#[test]
fn high_d_mixes_keep_the_paths_bit_identical() {
    // d ∈ {5, 6}: the regime where the planner's choice matters most
    // (the cold path overtakes the indexed recompute past d = 4), so
    // result equivalence must hold exactly where dispatch varies.
    for mix in high_d_mix(220, 3, 17) {
        let tree = build_tree(&mix.data);
        let scoring = ScoringFunction::linear(mix.d);
        for (qi, q) in mix.queries.iter().enumerate() {
            let qv = QueryVector::new(q.coords().to_vec());
            for kind in KINDS {
                check_paths_agree(
                    &tree,
                    &scoring,
                    &qv,
                    4,
                    Method::SkylinePruning,
                    kind,
                    &format!("d={} {} q={qi} {}", mix.d, mix.dist.label(), kind.label()),
                );
            }
        }
    }
}

/// Converts one churn burst into serve-layer updates.
fn burst_updates(burst: &[ChurnOp]) -> Vec<Update> {
    burst
        .iter()
        .map(|op| match op {
            ChurnOp::Delete(r) => Update::Delete {
                id: r.id,
                attrs: r.attrs.clone(),
            },
            ChurnOp::Reinsert(r) => Update::Insert(r.clone()),
        })
        .collect()
}

/// Replays Zipf traffic + skyline churn through one adaptive and four
/// forced single-tree servers in lockstep; every response must agree.
fn check_single_tree_servers_agree(seed: u64, method: Method, kind: RegionKind) {
    let d = 3;
    let data = gir::datagen::synthetic(gir::datagen::Distribution::Independent, 400, d, seed);
    let cfg = |force: Option<MissPath>| ServerConfig {
        threads: 1,
        shards: 4,
        shard_capacity: 32,
        method,
        maintenance: MaintenanceMode::DeltaRepair,
        use_prune_index: true,
        force_path: force,
        ..ServerConfig::default()
    };
    let scoring = ScoringFunction::linear(d);
    let adaptive = GirServer::new(build_tree(&data), scoring.clone(), cfg(None));
    let forced: Vec<(MissPath, GirServer)> = MissPath::ALL
        .into_iter()
        .map(|p| {
            (
                p,
                GirServer::new(build_tree(&data), scoring.clone(), cfg(Some(p))),
            )
        })
        .collect();

    let queries = zipfian_queries(48, d, 6, 1.2, 0.015, 0.05, seed ^ 0xA11CE);
    let bursts = skyline_churn(&data, 2, 3, seed ^ 0xC0FFEE);
    // Three rounds: queries, churn + queries, churn + queries.
    for (round, chunk) in queries.chunks(16).enumerate() {
        if round > 0 {
            let updates = burst_updates(&bursts[round - 1]);
            let base = adaptive.apply_updates(&updates).unwrap();
            for (p, srv) in &forced {
                let got = srv.apply_updates(&updates).unwrap();
                assert_eq!(
                    base,
                    got,
                    "round {round}: UpdateReport diverged vs {}",
                    p.label()
                );
            }
        }
        let reqs: Vec<TopKRequest> = chunk
            .iter()
            .enumerate()
            .map(|(i, w)| {
                TopKRequest::new(w.coords().to_vec(), if i % 2 == 0 { 5 } else { 10 }).kind(kind)
            })
            .collect();
        let base = adaptive.run_batch(&reqs);
        for (p, srv) in &forced {
            let got = srv.run_batch(&reqs);
            for (i, (ra, rb)) in base.responses.iter().zip(&got.responses).enumerate() {
                assert_eq!(
                    ra.ids,
                    rb.ids,
                    "round {round} req {i}: planner vs forced {} ids diverged",
                    p.label()
                );
                assert_eq!(
                    ra.from_cache,
                    rb.from_cache,
                    "round {round} req {i}: cache behavior diverged vs {}",
                    p.label()
                );
            }
        }
    }

    // Every forced server dispatched exclusively on its pinned path, and
    // the adaptive planner actually made decisions.
    for (p, srv) in &forced {
        assert_eq!(srv.forced_path(), Some(*p));
        let stats = srv.planner_stats();
        let idx = MissPath::ALL.iter().position(|x| x == p).unwrap();
        assert_eq!(
            stats.by_path[idx],
            stats.decisions,
            "{}: forced server strayed off its path",
            p.label()
        );
        assert_eq!(
            stats.forced_infeasible,
            0,
            "{}: feasible on one tree",
            p.label()
        );
    }
    let stats = adaptive.planner_stats();
    assert!(stats.decisions > 0, "adaptive planner never consulted");
    assert_eq!(stats.forced, 0);
}

/// Same lockstep replay over the partitioned server at S = 4: only the
/// sharded plan is feasible, so every force must fall back to it and
/// the responses must still be identical.
fn check_sharded_servers_agree(seed: u64, method: Method, kind: RegionKind) {
    let d = 3;
    let data = gir::datagen::synthetic(gir::datagen::Distribution::Independent, 600, d, seed);
    let cfg = |force: Option<MissPath>| ShardedServerConfig {
        threads: 1,
        data_shards: 4,
        placement: Placement::Hash,
        method,
        force_path: force,
        ..ShardedServerConfig::default()
    };
    let scoring = ScoringFunction::linear(d);
    let adaptive = ShardedGirServer::build(d, &data, scoring.clone(), cfg(None)).unwrap();
    let forced: Vec<(MissPath, ShardedGirServer)> = MissPath::ALL
        .into_iter()
        .map(|p| {
            (
                p,
                ShardedGirServer::build(d, &data, scoring.clone(), cfg(Some(p))).unwrap(),
            )
        })
        .collect();

    let queries = zipfian_queries(32, d, 5, 1.2, 0.015, 0.05, seed ^ 0x5AAD);
    let bursts = skyline_churn(&data, 1, 3, seed ^ 0xFACADE);
    for (round, chunk) in queries.chunks(16).enumerate() {
        if round > 0 {
            let updates = burst_updates(&bursts[round - 1]);
            adaptive.apply_updates(&updates).unwrap();
            for (_, srv) in &forced {
                srv.apply_updates(&updates).unwrap();
            }
        }
        let reqs: Vec<TopKRequest> = chunk
            .iter()
            .map(|w| TopKRequest::new(w.coords().to_vec(), 6).kind(kind))
            .collect();
        let base = adaptive.run_batch(&reqs);
        for (p, srv) in &forced {
            let got = srv.run_batch(&reqs);
            for (i, (ra, rb)) in base.responses.iter().zip(&got.responses).enumerate() {
                assert_eq!(
                    ra.ids,
                    rb.ids,
                    "S=4 round {round} req {i}: vs forced {}",
                    p.label()
                );
            }
        }
    }

    let sharded_idx = MissPath::ALL
        .iter()
        .position(|x| *x == MissPath::Sharded)
        .unwrap();
    for (p, srv) in &forced {
        let stats = srv.planner_stats();
        assert_eq!(
            stats.by_path[sharded_idx],
            stats.decisions,
            "S=4: every dispatch must be sharded (forced {})",
            p.label()
        );
        if *p == MissPath::Sharded {
            assert_eq!(stats.forced, stats.decisions);
        } else {
            // The pin is infeasible over a real partition: counted and
            // overridden, never honored and never fatal.
            assert_eq!(stats.forced, 0, "forced {}", p.label());
            assert_eq!(
                stats.forced_infeasible,
                stats.decisions,
                "forced {}",
                p.label()
            );
        }
    }
    let stats = adaptive.planner_stats();
    assert_eq!(stats.by_path[sharded_idx], stats.decisions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// S = 1: planner-dispatched ≡ every `force_path` oracle, responses
    /// and cache behavior, across methods × kinds × Zipf/churn traffic.
    #[test]
    fn planner_matches_every_forced_oracle_on_one_tree(
        seed in 1u64..1 << 40,
        mi in 0usize..3,
        ki in 0usize..2,
    ) {
        check_single_tree_servers_agree(seed, METHODS[mi], KINDS[ki]);
    }

    /// S = 4: the partitioned server is sharded-only; forces fall back.
    #[test]
    fn planner_matches_every_forced_oracle_across_shards(
        seed in 1u64..1 << 40,
        mi in 0usize..3,
        ki in 0usize..2,
    ) {
        check_sharded_servers_agree(seed, METHODS[mi], KINDS[ki]);
    }
}
