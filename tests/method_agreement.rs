//! Cross-method differential test: FP, CP, SP and the full-scan oracle
//! must produce the **same immutable region** on identical random
//! inputs — previously each method was only tested against its own
//! oracle.
//!
//! Equality is checked three ways per case: identical top-k (including
//! order), identical sampled point membership (boundary-epsilon
//! disagreements tolerated), and region volume within tolerance (the
//! paper's Fig 14 robustness measure; exact vertex-enumeration volumes
//! agree to ~1e-9, the Monte-Carlo fallback to a few percent).

use gir::core::{GirEngine, GirOutput, Method};
use gir::geometry::volume::{monte_carlo_volume, VolumeOptions};
use gir::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

const METHODS: [Method; 4] = [
    Method::FullScan,
    Method::SkylinePruning,
    Method::ConvexHullPruning,
    Method::FacetPruning,
];

fn dataset(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n..n + 30)
}

fn check_methods_agree(rows: &[Vec<f64>], w: Vec<f64>, k: usize) {
    let d = w.len();
    let recs: Vec<Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Record::new(i as u64, r.clone()))
        .collect();
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &recs).unwrap();
    let engine = GirEngine::new(&tree);
    let q = QueryVector::new(w);

    let outs: Vec<(Method, GirOutput)> = METHODS
        .iter()
        .map(|&m| (m, engine.gir(&q, k, m).unwrap()))
        .collect();
    let (_, oracle) = &outs[0]; // FullScan: the §3.3 strawman reads everything

    // Same top-k, same order.
    for (m, out) in &outs[1..] {
        prop_assert_eq!(
            out.result.ids(),
            oracle.result.ids(),
            "{:?}: result differs from the full-scan oracle",
            m
        );
    }

    // Same region as a point set.
    let mut probe = 0xA95Eu64 | 1;
    for _ in 0..60 {
        let wp = PointD::from(
            (0..d)
                .map(|_| {
                    probe ^= probe << 13;
                    probe ^= probe >> 7;
                    probe ^= probe << 17;
                    (probe >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect::<Vec<f64>>(),
        );
        let expect = oracle.region.contains(&wp);
        for (m, out) in &outs[1..] {
            let got = out.region.contains(&wp);
            if got != expect {
                let margin: f64 = oracle
                    .region
                    .halfspaces
                    .iter()
                    .chain(&out.region.halfspaces)
                    .map(|h| h.slack(&wp))
                    .fold(f64::INFINITY, |acc, v| acc.min(v.abs()));
                prop_assert!(
                    margin < 1e-6,
                    "{:?} d={}: membership differs from SCAN at {:?} (margin {})",
                    m,
                    d,
                    wp,
                    margin
                );
            }
        }
    }

    // Same volume within tolerance. The membership probes above are
    // the exact equality check; the volume is the aggregate
    // cross-check, computed for every method with the *same
    // deterministic Monte-Carlo sampler* — exact vertex enumeration
    // over hundreds of near-redundant constraints drifts by double
    // digits in 4-d/5-d (tie facets reduce differently), whereas equal
    // regions sampled identically can only disagree by boundary noise.
    let opts = VolumeOptions {
        mc_samples: 50_000,
        seed: 0x70_FF_EE,
        ..VolumeOptions::default()
    };
    let vol_oracle = monte_carlo_volume(&oracle.region.halfspaces, d, &opts);
    for (m, out) in &outs[1..] {
        let vol = monte_carlo_volume(&out.region.halfspaces, d, &opts);
        let tol = 2e-2 * vol_oracle.volume.max(vol.volume) + 1e-4;
        prop_assert!(
            (vol.volume - vol_oracle.volume).abs() <= tol,
            "{:?} d={}: volume {} vs SCAN {} (tol {})",
            m,
            d,
            vol.volume,
            vol_oracle.volume,
            tol
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn methods_agree_2d(
        rows in dataset(2, 80),
        w in proptest::collection::vec(0.05f64..1.0, 2),
        k in 1usize..8,
    ) {
        check_methods_agree(&rows, w, k);
    }

    #[test]
    fn methods_agree_3d(
        rows in dataset(3, 90),
        w in proptest::collection::vec(0.05f64..1.0, 3),
        k in 1usize..8,
    ) {
        check_methods_agree(&rows, w, k);
    }

    #[test]
    fn methods_agree_4d(
        rows in dataset(4, 70),
        w in proptest::collection::vec(0.05f64..1.0, 4),
        k in 1usize..6,
    ) {
        check_methods_agree(&rows, w, k);
    }

    #[test]
    fn methods_agree_5d(
        rows in dataset(5, 60),
        w in proptest::collection::vec(0.05f64..1.0, 5),
        k in 1usize..5,
    ) {
        check_methods_agree(&rows, w, k);
    }
}
