//! The distribution differential: **process-per-shard ≡ in-process
//! sharding**, bit for bit, and faults degrade single responses —
//! never the batch, never the data.
//!
//! Three layers of proof over S ∈ {1, 2, 4, 8} × both placements:
//!
//! * [`distributed_region_bits_match_in_process`] — the raw compute
//!   seam: `RemoteShards::region` (merge + one `Phase2` RPC per shard,
//!   every record and half-space crossing the checksummed wire) against
//!   `ShardedDataset::gir`/`gir_star`, compared with the shared
//!   bit-identity oracle (ranked ids, score bits, half-space
//!   normal/offset bits, provenance sequence, Phase-2 counters), across
//!   random churn applied through the coordinator WAL on one side and
//!   direct tree updates on the other — plus consistent-cut agreement
//!   (the cut at a `DeltaBatch` boundary reproduces the live multiset
//!   bit-exactly).
//! * [`distributed_server_equals_in_process_under_faults`] — the full
//!   serving stack under a proptest-chosen fault plan (none / kill /
//!   delay-past-retries at a drawn shard × call index): every
//!   non-failed response matches the in-process `ShardedGirServer`
//!   oracle; every failed response names the unavailable shard; with no
//!   faults the hit/miss pattern, cache stats and full `UpdateReport`
//!   are identical; update batches rejoin dead workers (snapshot + WAL
//!   suffix) before broadcasting, so churn survives any schedule and
//!   the final record multisets agree bit-exactly.
//! * [`killed_worker_degrades_exactly_one_response`] — the PR 4
//!   contract across the wire: with a warm cache, a kill costs exactly
//!   the one response that needed the dead shard (`failed: true`, shard
//!   named in `error`), the rest of the batch serves from cache;
//!   [`DistributedGirServer::rejoin_dead`] brings the worker back via
//!   snapshot + WAL replay and the same query then succeeds with oracle
//!   ids.

mod common;

use common::oracle::{
    assert_bit_identical, dataset_key, materialize, probe_requests, records, report_key, Op,
    SHARDINGS,
};
use common::rpc::{dist_cfg, faulty_factory, inproc_cfg, one_shot_faulty_factory, remote_cfg};
use gir::core::{Method, RegionKind};
use gir::prelude::*;
use gir::rpc::{DistributedGirServer, Fault, FaultAction, FaultPlan, RemoteShards};
use gir::shard::{ShardedDataset, ShardedGirServer};
use proptest::prelude::*;
use std::sync::Arc;

/// The raw compute seam: every ranked record, score and half-space of
/// the distributed plan crosses the wire and must come back bit-equal
/// to the in-process shard fan-out — initially and after every churn
/// round applied through the coordinator WAL.
#[test]
fn distributed_region_bits_match_in_process() {
    let d = 3;
    let scoring = ScoringFunction::linear(d);
    let queries = [vec![0.55, 0.62, 0.48], vec![0.9, 0.15, 0.4]];
    for (s, p) in SHARDINGS {
        let mut live = records(220, d, 0x52_7063 ^ s as u64);
        let remote = RemoteShards::launch(
            scoring.clone(),
            p,
            s,
            &live,
            remote_cfg(),
            faulty_factory(FaultPlan::none()),
        )
        .unwrap();
        let mut data = ShardedDataset::build(d, &live, s, p).unwrap();

        let mut rng = 0x9E37u64 | 1;
        let mut next_id = 5_000_000u64;
        for round in 0..3 {
            if round > 0 {
                // One churn batch: the distributed side goes through
                // apply (WAL append + broadcast), the in-process side
                // through direct tree updates.
                let mut updates = Vec::new();
                for _ in 0..5 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    if rng % 10 < 6 || live.len() < 40 {
                        let attrs: Vec<f64> = (0..d)
                            .map(|j| {
                                let mut x = rng.rotate_left(j as u32 + 1) | 1;
                                x ^= x << 13;
                                x ^= x >> 7;
                                (x >> 11) as f64 / (1u64 << 53) as f64
                            })
                            .collect();
                        let rec = Record::new(next_id, attrs);
                        next_id += 1;
                        live.push(rec.clone());
                        updates.push(Update::Insert(rec));
                    } else {
                        let idx = (rng as usize / 10) % live.len();
                        let victim = live.swap_remove(idx);
                        updates.push(Update::Delete {
                            id: victim.id,
                            attrs: victim.attrs,
                        });
                    }
                }
                let inserts = updates
                    .iter()
                    .filter(|u| matches!(u, Update::Insert(_)))
                    .count();
                let applied = remote.apply(&updates).unwrap();
                assert_eq!(
                    (applied.report.inserted, applied.report.deleted),
                    (inserts, updates.len() - inserts),
                    "S={s} {p:?} round={round}: owner outcomes miscounted"
                );
                for u in &updates {
                    match u {
                        Update::Insert(rec) => data.insert(rec.clone()).unwrap(),
                        Update::Delete { id, attrs } => {
                            assert!(data.delete(*id, attrs).unwrap());
                        }
                    }
                }
                // The consistent cut at this batch boundary is the live
                // multiset, bit-exactly.
                assert_eq!(
                    dataset_key(remote.cut_all().unwrap().into_iter().flatten().collect()),
                    dataset_key(live.clone()),
                    "S={s} {p:?} round={round}: consistent cut diverged"
                );
            }

            for (qi, w) in queries.iter().enumerate() {
                let q = QueryVector::new(w.clone());
                for k in [1usize, 4] {
                    for m in [Method::SkylinePruning, Method::FacetPruning] {
                        let label = |kind: &str| {
                            format!("{kind} S={s} {p:?} round={round} q={qi} k={k} {m:?}")
                        };
                        let local = data.gir(&scoring, &q, k, m).unwrap();
                        let wire = remote.region(RegionKind::Gir, &q, k, m).unwrap();
                        assert_bit_identical(&local, &wire, &label("gir"));

                        let local = data.gir_star(&scoring, &q, k, m).unwrap();
                        let wire = remote.region(RegionKind::GirStar, &q, k, m).unwrap();
                        assert_bit_identical(&local, &wire, &label("gir_star"));
                    }
                }
            }
        }
        remote.shutdown();
    }
}

/// What the drawn fault does: nothing, a worker kill, or a delay long
/// enough to exhaust the retry budget (both reap the slot; they differ
/// in the failure reason and the retry counters).
fn build_plan(fault_kind: u8, shard: usize, call: u64) -> Arc<FaultPlan> {
    let faults = match fault_kind {
        1 => vec![Fault {
            shard,
            call,
            action: FaultAction::Kill,
        }],
        2 => (0..2) // the retry lands on call + 1: delay both
            .map(|i| Fault {
                shard,
                call: call + i,
                action: FaultAction::Delay,
            })
            .collect(),
        _ => Vec::new(),
    };
    Arc::new(FaultPlan { faults })
}

#[allow(clippy::too_many_arguments)]
fn run_fault_case(
    d: usize,
    records: &[Record],
    batches: &[Vec<Update>],
    requests: &[TopKRequest],
    fresh: &[TopKRequest],
    s: usize,
    p: Placement,
    fault_kind: u8,
    fault_shard: usize,
    fault_call: u64,
) {
    let ctx = format!("S={s} {p:?} fault={fault_kind}@{fault_shard}:{fault_call}");
    let scoring = ScoringFunction::linear(d);
    let oracle = ShardedGirServer::build(d, records, scoring.clone(), inproc_cfg(s, p)).unwrap();
    let plan = build_plan(fault_kind, fault_shard % s, fault_call);
    let dist = DistributedGirServer::launch(
        records,
        scoring,
        dist_cfg(s, p),
        one_shot_faulty_factory(plan),
    )
    .unwrap();

    for (bi, batch) in batches.iter().enumerate() {
        let got = dist.run_batch(requests);
        let want = oracle.run_batch(requests);
        prop_assert_eq!(got.responses.len(), want.responses.len());
        for (i, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
            if g.failed {
                // Degraded, not wrong: the reason names the shard, the
                // rest of the batch is untouched.
                let reason = g.error.as_deref().unwrap_or_default();
                prop_assert!(
                    reason.contains("unavailable"),
                    "{}: probe {} failed without a shard reason: {:?}",
                    &ctx,
                    i,
                    g.error
                );
                prop_assert!(g.ids.is_empty(), "{}: failed probe {} carries ids", &ctx, i);
            } else {
                prop_assert_eq!(
                    &g.ids,
                    &w.ids,
                    "{}: batch {} probe {} ids diverged",
                    &ctx,
                    bi,
                    i
                );
            }
            if fault_kind == 0 {
                prop_assert!(!g.failed, "{}: no-fault probe {} failed", &ctx, i);
                prop_assert_eq!(
                    g.from_cache,
                    w.from_cache,
                    "{}: hit/miss pattern diverged at probe {}",
                    &ctx,
                    i
                );
            }
        }
        if fault_kind == 0 {
            let (a, b) = (dist.cache_stats(), oracle.cache_stats());
            prop_assert_eq!(
                (a.entries, a.hits),
                (b.entries, b.hits),
                "{}: cache stats",
                &ctx
            );
        }

        // Churn: apply rejoins any dead worker first (snapshot + WAL
        // suffix), so owner outcomes — and hence the report — stay
        // exact whatever the fault schedule did.
        let r_d = dist.apply_updates(batch).unwrap();
        let r_o = oracle.apply_updates(batch).unwrap();
        prop_assert_eq!(
            (r_d.inserted, r_d.deleted, r_d.missed_deletes),
            (r_o.inserted, r_o.deleted, r_o.missed_deletes),
            "{}: batch {} owner outcomes diverged",
            &ctx,
            bi
        );
        if fault_kind == 0 {
            // Identical caches ⇒ identical maintenance classification.
            prop_assert_eq!(
                report_key(&r_d),
                report_key(&r_o),
                "{}: batch {} maintenance diverged",
                &ctx,
                bi
            );
        }
    }

    // Recovery: every worker rejoins, fresh queries (cold on both
    // sides) agree, and the datasets are bit-identical. A planned fault
    // whose call index was never reached during the main run can still
    // fire here — each endpoint instance faults at most once (the
    // factory is one-shot), so one absorb-and-rejoin round converges.
    dist.rejoin_dead().unwrap();
    prop_assert!(
        dist.dead_shards().is_empty(),
        "{}: dead shards after rejoin",
        &ctx
    );
    let mut got = dist.run_batch(fresh);
    for _ in 0..3 {
        if got.responses.iter().all(|r| !r.failed) {
            break;
        }
        dist.rejoin_dead().unwrap();
        got = dist.run_batch(fresh);
    }
    let want = oracle.run_batch(fresh);
    for (i, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
        prop_assert!(!g.failed, "{}: post-rejoin probe {} failed", &ctx, i);
        prop_assert_eq!(&g.ids, &w.ids, "{}: post-rejoin probe {} diverged", &ctx, i);
    }
    prop_assert_eq!(
        dataset_key(dist.records_snapshot().unwrap()),
        dataset_key(oracle.records_snapshot().unwrap()),
        "{}: final record multiset diverged",
        &ctx
    );
    dist.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The full serving stack under a proptest-chosen kill/delay/none
    /// schedule, over churn, across the sharding grid.
    #[test]
    fn distributed_server_equals_in_process_under_faults(
        floats in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3), 60..90),
        ops in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..10, proptest::collection::vec(0.0f64..1.0, 3), 0u64..1 << 40),
                2..5),
            3..6),
        probes in proptest::collection::vec(
            proptest::collection::vec(0.05f64..0.95, 3), 3),
        k in 2usize..6,
        fault_kind in 0u8..3,
        fault_shard in 0usize..8,
        fault_call in 0u64..24,
    ) {
        let d = 3;
        let records: Vec<Record> = floats
            .into_iter()
            .enumerate()
            .map(|(i, attrs)| Record::new(i as u64, attrs))
            .collect();
        let ops: Vec<Vec<Op>> = ops;
        let batches = materialize(&records, &ops);
        let requests = probe_requests(&probes, k);
        // Cold on both sides after the run: mirrored weights.
        let fresh_probes: Vec<Vec<f64>> =
            probes.iter().map(|w| w.iter().map(|x| 1.03 - x).collect()).collect();
        let fresh = probe_requests(&fresh_probes, k);
        for (s, p) in SHARDINGS {
            run_fault_case(
                d, &records, &batches, &requests, &fresh,
                s, p, fault_kind, fault_shard, fault_call,
            );
        }
    }
}

/// The sharpest form of the failure contract: a kill costs exactly the
/// one response that needed the dead worker.
#[test]
fn killed_worker_degrades_exactly_one_response() {
    let d = 3;
    let s = 4;
    let scoring = ScoringFunction::linear(d);
    let data = records(160, d, 0x1CE0);
    let oracle =
        ShardedGirServer::build(d, &data, scoring.clone(), inproc_cfg(s, Placement::Hash)).unwrap();

    // Warm probes, then kill shard 2 on its next query call. Each
    // *miss* costs shard 2 exactly two query calls (TopK + Phase2),
    // and both kinds of one weight share a cache entry (identical
    // top-k), so warming W weights is W misses: the next miss's fan-out
    // starts at fault-clock index 2W.
    //
    // The cache is *region*-based: a query whose weights fall inside a
    // cached GIR hits even with brand-new weights. Finding a weight
    // vector that genuinely misses post-warmup is therefore done on the
    // oracle (same cache semantics, no transport) before the fault plan
    // is armed.
    let warm_weights = [vec![0.55, 0.62, 0.48], vec![0.9, 0.15, 0.4]];
    let warm = probe_requests(&warm_weights, 5);
    oracle.run_batch(&warm);
    let fresh_w = (0..50)
        .map(|t| {
            let t = f64::from(t);
            vec![0.05 + 0.017 * t, 0.95 - 0.013 * t, 0.10 + 0.009 * t]
        })
        .find(|w| {
            let out = oracle.run_batch(&probe_requests(std::slice::from_ref(w), 5)[..1]);
            !out.responses[0].from_cache
        })
        .expect("some weight vector escapes every warm region");
    let plan = Arc::new(FaultPlan {
        faults: vec![Fault {
            shard: 2,
            call: 2 * warm_weights.len() as u64,
            action: FaultAction::Kill,
        }],
    });
    let dist = DistributedGirServer::launch(
        &data,
        scoring,
        dist_cfg(s, Placement::Hash),
        faulty_factory(plan),
    )
    .unwrap();

    let out = dist.run_batch(&warm);
    assert!(out.responses.iter().all(|r| !r.failed), "warmup failed");

    // One fresh miss among warm hits: the kill fires inside the fresh
    // miss's fan-out; the hits never touch the transport.
    let mut batch = warm.clone();
    batch.push(probe_requests(std::slice::from_ref(&fresh_w), 5)[0].clone());
    let out = dist.run_batch(&batch);
    let failed: Vec<usize> = out
        .responses
        .iter()
        .enumerate()
        .filter(|(_, r)| r.failed)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        failed,
        vec![batch.len() - 1],
        "exactly the fresh miss must degrade"
    );
    let reason = out.responses[batch.len() - 1]
        .error
        .as_deref()
        .expect("failed response carries its reason");
    assert!(
        reason.contains("shard 2"),
        "reason must name the dead shard: {reason}"
    );
    assert!(
        out.responses[..batch.len() - 1]
            .iter()
            .all(|r| r.from_cache && !r.failed),
        "warm responses must keep serving from cache"
    );
    assert_eq!(dist.dead_shards(), vec![2], "the killed slot is reaped");

    // Snapshot + WAL rejoin, then the same query succeeds with oracle
    // ids.
    assert_eq!(dist.rejoin_dead().unwrap(), 1);
    assert!(dist.dead_shards().is_empty());
    let got = dist.run_batch(std::slice::from_ref(&batch[batch.len() - 1]));
    let want = oracle.run_batch(std::slice::from_ref(&batch[batch.len() - 1]));
    assert!(!got.responses[0].failed, "post-rejoin query failed");
    assert_eq!(
        got.responses[0].ids, want.responses[0].ids,
        "post-rejoin ids diverged from the in-process oracle"
    );
    dist.shutdown();
}
