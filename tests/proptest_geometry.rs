//! Property-based tests of the geometric substrate: hulls, LP,
//! half-space intersection, volumes.

use gir_geometry::hull::{hull_2d_indices, ConvexHull};
use gir_geometry::hyperplane::{HalfSpace, Provenance};
use gir_geometry::lp::{chebyshev_center, maximize, LpStatus};
use gir_geometry::vector::PointD;
use gir_geometry::volume::{monte_carlo_volume, region_volume, VolumeMethod, VolumeOptions};
use proptest::prelude::*;

fn points(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..0.99, d), n..n + 30)
}

fn halfspace(d: usize) -> impl Strategy<Value = HalfSpace> {
    (proptest::collection::vec(-1.0f64..1.0, d), 0.0f64..1.5).prop_map(|(n, b)| HalfSpace {
        normal: PointD::from(n),
        offset: b,
        provenance: Provenance::NonResult { record_id: 0 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hull invariants in 3-d: contains every input point; facet planes
    /// pass through their vertices; adjacency is symmetric.
    #[test]
    fn hull_3d_invariants(rows in points(3, 20)) {
        let pts: Vec<PointD> = rows.iter().map(|r| PointD::from(r.clone())).collect();
        match ConvexHull::build(&pts) {
            Ok(h) => {
                for p in &pts {
                    prop_assert!(h.contains(p, 1e-7));
                }
                for f in h.facets() {
                    for &v in &f.vertices {
                        prop_assert!(f.plane.eval(&pts[v]).abs() < 1e-7);
                    }
                }
                prop_assert!(h.volume() >= 0.0);
                prop_assert!(h.volume() <= 1.0 + 1e-9); // inside unit cube
            }
            Err(_) => {
                // Degenerate random input is astronomically unlikely but
                // legal; nothing to check.
            }
        }
    }

    /// The d-dimensional incremental hull agrees with the exact 2-d
    /// monotone chain on planar inputs.
    #[test]
    fn hull_2d_agreement(rows in points(2, 10)) {
        let pts: Vec<PointD> = rows.iter().map(|r| PointD::from(r.clone())).collect();
        if let Ok(h) = ConvexHull::build(&pts) {
            let mut inc = h.vertex_indices();
            inc.sort_unstable();
            let mut chain = hull_2d_indices(&pts);
            chain.sort_unstable();
            prop_assert_eq!(inc, chain);
        }
    }

    /// LP optimum is feasible and no sampled feasible point beats it.
    #[test]
    fn lp_optimal_dominates_samples(
        cons in proptest::collection::vec(halfspace(3), 1..8),
        c in proptest::collection::vec(-1.0f64..1.0, 3),
        samples in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 50),
    ) {
        let pairs: Vec<(PointD, f64)> =
            cons.iter().map(|h| (h.normal.clone(), h.offset)).collect();
        let obj = PointD::from(c);
        let res = maximize(&obj, &pairs, 0.0, 1.0);
        match res.status {
            LpStatus::Optimal => {
                let x = res.x.unwrap();
                for (n, b) in &pairs {
                    prop_assert!(n.dot(&x) <= b + 1e-6, "LP optimum infeasible");
                }
                for s in samples {
                    let p = PointD::from(s);
                    if pairs.iter().all(|(n, b)| n.dot(&p) <= *b) {
                        prop_assert!(obj.dot(&p) <= res.value + 1e-6,
                            "sample beats LP optimum");
                    }
                }
            }
            LpStatus::Infeasible => {
                // Then no sample may be feasible either.
                for s in samples {
                    let p = PointD::from(s);
                    prop_assert!(
                        !pairs.iter().all(|(n, b)| n.dot(&p) <= *b - 1e-9),
                        "LP said infeasible but a feasible sample exists"
                    );
                }
            }
        }
    }

    /// The Chebyshev center is feasible with margin ≈ its radius.
    #[test]
    fn chebyshev_center_has_its_radius(
        cons in proptest::collection::vec(halfspace(2), 0..6),
    ) {
        let pairs: Vec<(PointD, f64)> =
            cons.iter().map(|h| (h.normal.clone(), h.offset)).collect();
        if let Some((c, r)) = chebyshev_center(&pairs, 0.0, 1.0, 2) {
            for (n, b) in &pairs {
                let norm = n.norm();
                prop_assert!(n.dot(&c) <= b - r * norm + 1e-6);
            }
            prop_assert!(c[0] >= r - 1e-6 && c[0] <= 1.0 - r + 1e-6);
        }
    }

    /// Exact volume (dual-hull vertex enumeration) matches Monte-Carlo
    /// for random 2-d regions.
    #[test]
    fn exact_volume_matches_monte_carlo(
        cons in proptest::collection::vec(halfspace(2), 0..5),
    ) {
        let mut hs: Vec<HalfSpace> = HalfSpace::full_query_box(2);
        hs.extend(cons);
        let opts = VolumeOptions { mc_samples: 60_000, ..VolumeOptions::default() };
        let exact = region_volume(&hs, 2, None, &opts);
        let mc = monte_carlo_volume(&hs, 2, &opts);
        match exact.method {
            VolumeMethod::Exact => {
                let diff = (exact.volume - mc.volume).abs();
                prop_assert!(
                    diff < 0.02 + 0.05 * exact.volume,
                    "exact {} vs MC {}", exact.volume, mc.volume
                );
            }
            VolumeMethod::DegenerateZero => {
                prop_assert!(mc.volume < 0.02, "zero-volume region with MC mass {}", mc.volume);
            }
            VolumeMethod::MonteCarlo { .. } => {}
        }
    }

    /// Monotonicity: intersecting with one more half-space never grows
    /// the volume.
    #[test]
    fn volume_shrinks_under_intersection(
        cons in proptest::collection::vec(halfspace(2), 1..5),
    ) {
        let mut hs: Vec<HalfSpace> = HalfSpace::full_query_box(2);
        let opts = VolumeOptions { mc_samples: 40_000, ..VolumeOptions::default() };
        let mut prev = region_volume(&hs, 2, None, &opts).volume;
        for h in cons {
            hs.push(h);
            let v = region_volume(&hs, 2, None, &opts).volume;
            prop_assert!(v <= prev + 0.02, "volume grew: {} -> {}", prev, v);
            prev = v;
        }
    }
}
