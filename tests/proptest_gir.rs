//! Property-based tests of the GIR invariants over random datasets,
//! queries and probes.

use gir::core::Method;
use gir::prelude::*;
use gir::query::{naive_topk, ScoringFunction};
use gir_geometry::vector::PointD;
use proptest::prelude::*;
use std::sync::Arc;

fn build_tree(rows: &[Vec<f64>]) -> (Vec<gir::rtree::Record>, RTree) {
    let data: Vec<gir::rtree::Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| gir::rtree::Record::new(i as u64, r.clone()))
        .collect();
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    (data, tree)
}

fn dataset(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n..n + 40)
}

fn weights(d: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..1.0, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central law (Definition 1), for every method, on arbitrary
    /// 3-d data: a probe weight vector is inside the GIR iff the naive
    /// top-k under it matches the original ranked result.
    #[test]
    fn gir_law_holds_everywhere_3d(
        rows in dataset(3, 80),
        w in weights(3),
        probe in weights(3),
        k in 1usize..8,
    ) {
        let (data, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(w);
        let f = ScoringFunction::linear(3);
        let base = naive_topk(&data, &f, &q.weights, k).ids();
        let wp = PointD::from(probe);
        let expect = naive_topk(&data, &f, &wp, k).ids() == base;
        for m in [
            Method::SkylinePruning,
            Method::ConvexHullPruning,
            Method::FacetPruning,
            Method::FullScan,
        ] {
            let out = engine.gir(&q, k, m).unwrap();
            prop_assert_eq!(out.result.ids(), base.clone());
            let got = out.region.contains(&wp);
            if got != expect {
                let margin: f64 = out
                    .region
                    .halfspaces
                    .iter()
                    .map(|h| h.slack(&wp))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(
                    margin.abs() < 1e-6,
                    "{:?}: law violated at {:?} (margin {})", m, wp, margin
                );
            }
        }
    }

    /// Same law in 2-d, where FP runs the specialized rotating-line code.
    #[test]
    fn gir_law_holds_everywhere_2d(
        rows in dataset(2, 60),
        w in weights(2),
        probe in weights(2),
        k in 1usize..6,
    ) {
        let (data, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(w);
        let f = ScoringFunction::linear(2);
        let base = naive_topk(&data, &f, &q.weights, k).ids();
        let wp = PointD::from(probe);
        let expect = naive_topk(&data, &f, &wp, k).ids() == base;
        let out = engine.gir(&q, k, Method::FacetPruning).unwrap();
        let got = out.region.contains(&wp);
        if got != expect {
            let margin: f64 = out
                .region
                .halfspaces
                .iter()
                .map(|h| h.slack(&wp))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(margin.abs() < 1e-6);
        }
    }

    /// FP's output region is the same point set as FullScan's but with
    /// (usually far) fewer half-spaces — the pruning is lossless.
    #[test]
    fn fp_is_lossless_but_smaller(
        rows in dataset(3, 100),
        w in weights(3),
        k in 2usize..10,
    ) {
        let (_, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(w);
        let fp = engine.gir(&q, k, Method::FacetPruning).unwrap();
        let scan = engine.gir(&q, k, Method::FullScan).unwrap();
        prop_assert!(fp.stats.candidates <= scan.stats.candidates);
        // Both regions contain the query.
        prop_assert!(fp.region.contains(&q.weights));
        prop_assert!(scan.region.contains(&q.weights));
    }

    /// GIR ⊆ GIR* for random data and queries.
    #[test]
    fn gir_star_encloses_gir(
        rows in dataset(3, 70),
        w in weights(3),
        probe in weights(3),
        k in 2usize..6,
    ) {
        let (_, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(w);
        let gir = engine.gir(&q, k, Method::FacetPruning).unwrap();
        let star = engine.gir_star(&q, k, Method::FacetPruning).unwrap();
        let wp = PointD::from(probe);
        if gir.region.contains(&wp) {
            // Allow boundary epsilon.
            if !star.region.contains(&wp) {
                let margin: f64 = star
                    .region
                    .halfspaces
                    .iter()
                    .map(|h| h.slack(&wp))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(margin.abs() < 1e-6, "GIR ⊄ GIR* at {:?}", wp);
            }
        }
    }

    /// Axis intervals (LIRs) are sound: any single-weight move inside its
    /// interval preserves the ranked result.
    #[test]
    fn axis_intervals_are_sound(
        rows in dataset(3, 80),
        w in weights(3),
        t in 0.0f64..1.0,
        dim in 0usize..3,
        k in 1usize..6,
    ) {
        let (data, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(w);
        let f = ScoringFunction::linear(3);
        let out = engine.gir(&q, k, Method::SkylinePruning).unwrap();
        let (lo, hi) = out.region.axis_intervals()[dim];
        // Sample a point strictly inside the interval.
        if hi - lo > 1e-6 {
            let margin = (hi - lo) * 1e-3;
            let v = lo + margin + t * ((hi - lo) - 2.0 * margin);
            let mut moved = q.weights.clone();
            moved[dim] = v;
            prop_assert_eq!(
                naive_topk(&data, &f, &moved, k).ids(),
                out.result.ids(),
                "LIR unsound at dim {} value {}", dim, v
            );
        }
    }

    /// The MAH box is entirely inside the GIR: every corner preserves
    /// the result.
    #[test]
    fn mah_box_is_sound(
        rows in dataset(2, 60),
        w in weights(2),
        k in 1usize..5,
    ) {
        let (data, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(w);
        let f = ScoringFunction::linear(2);
        let out = engine.gir(&q, k, Method::FacetPruning).unwrap();
        let mah = out.region.mah();
        let eps = 1e-9;
        for cx in [mah.lo[0] + eps, mah.hi[0] - eps] {
            for cy in [mah.lo[1] + eps, mah.hi[1] - eps] {
                let corner = PointD::new(vec![cx.clamp(0.0, 1.0), cy.clamp(0.0, 1.0)]);
                if corner.sub(&q.weights).norm() < 1e-12 {
                    continue;
                }
                prop_assert_eq!(
                    naive_topk(&data, &f, &corner, k).ids(),
                    out.result.ids(),
                    "MAH corner {:?} escapes the GIR", corner
                );
            }
        }
    }
}
