//! Concurrency tests for the serving subsystem: the sharded cache is
//! hammered from 8 threads with interleaved maintenance sweeps, and the
//! full server is driven with concurrent batches + updates, with every
//! cache-served answer cross-checked against a linear-scan oracle.

use gir::core::CacheKey;
use gir::prelude::*;
use gir::query::naive_topk;
use gir::serve::{mixed_workload, ShardedGirCache, WorkloadConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn build_server(n: usize, d: usize, seed: u64, threads: usize) -> (Vec<Record>, GirServer) {
    let data = gir::datagen::synthetic(Distribution::Independent, n, d, seed);
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    let cfg = ServerConfig {
        threads,
        ..ServerConfig::default()
    };
    (
        data.clone(),
        GirServer::new(tree, ScoringFunction::linear(d), cfg),
    )
}

/// 8 threads of lookups/inserts against one sharded cache while a 9th
/// sweeps maintenance updates through it. Checks liveness (no deadlock),
/// counter consistency, and that capacity bounds hold throughout.
#[test]
fn sharded_cache_smoke_8_threads_with_update_sweeps() {
    let d = 3;
    let (data, server) = build_server(800, d, 0xC0C0, 2);
    // Pre-compute a pool of (region, result) pairs to admit from many
    // threads without re-running the engine inside the loop.
    let scoring = ScoringFunction::linear(d);
    let snapshot = server.records_snapshot().unwrap();
    let engines_pool: Vec<(gir::core::GirRegion, gir::query::TopKResult)> = {
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let tree = RTree::bulk_load(store, &snapshot).unwrap();
        let engine = GirEngine::new(&tree);
        gir::datagen::random_queries(16, d, 0.2, 0xC1)
            .iter()
            .map(|w| {
                let out = engine
                    .gir(
                        &QueryVector::new(w.coords().to_vec()),
                        8,
                        Method::FacetPruning,
                    )
                    .unwrap();
                (out.region, out.result)
            })
            .collect()
    };

    let shard_capacity = 4;
    let cache = Arc::new(ShardedGirCache::new(8, shard_capacity));
    let probes = gir::datagen::random_queries(64, d, 0.0, 0xC2);
    let stop = Arc::new(AtomicBool::new(false));
    let lookups_done = Arc::new(AtomicU64::new(0));

    // Flips the sweeper's stop flag even when a worker panics and the
    // closure unwinds, so the test fails with the panic instead of
    // hanging on the outer scope's join.
    struct StopOnDrop(Arc<AtomicBool>);
    impl Drop for StopOnDrop {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    std::thread::scope(|scope| {
        let _stop_guard = StopOnDrop(Arc::clone(&stop));
        // Sweeper thread: interleaved maintenance updates until stopped.
        let sweeper_cache = Arc::clone(&cache);
        let sweeper_stop = Arc::clone(&stop);
        let newcomers = &data;
        scope.spawn(move || {
            let mut i = 0usize;
            while !sweeper_stop.load(Ordering::Relaxed) {
                let rec = Record::new(
                    5_000_000 + i as u64,
                    newcomers[i % newcomers.len()].attrs.coords().to_vec(),
                );
                sweeper_cache.on_insert(&rec);
                sweeper_cache.on_delete(newcomers[(i * 13) % newcomers.len()].id);
                i += 1;
                std::thread::yield_now();
            }
        });
        // The inner scope joins all workers (propagating any panic,
        // which drops _stop_guard and releases the sweeper).
        std::thread::scope(|workers| {
            for t in 0..8usize {
                let cache = Arc::clone(&cache);
                let scoring = scoring.clone();
                let pool = &engines_pool;
                let probes = &probes;
                let lookups_done = Arc::clone(&lookups_done);
                workers.spawn(move || {
                    for round in 0..200 {
                        let (region, result) = &pool[(t * 7 + round) % pool.len()];
                        cache.admit(
                            &CacheKey::new(&region.query, result.len(), &scoring),
                            region.clone(),
                            result.clone(),
                        );
                        for w in probes.iter().skip(t * 8).take(8) {
                            let _ = cache.get(&CacheKey::new(w, 8, &scoring));
                            lookups_done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
    });
    assert_eq!(lookups_done.load(Ordering::Relaxed), 8 * 200 * 8);

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        lookups_done.load(Ordering::Relaxed),
        "every lookup must count exactly once"
    );
    assert!(
        stats.entries <= 8 * shard_capacity,
        "capacity exceeded: {}",
        stats.entries
    );
}

/// Full-server freshness under churn: replay mixed traffic, mirror the
/// updates into a model vector, and require every *cache-served*
/// response to equal the linear-scan oracle on the current dataset.
#[test]
fn server_never_serves_stale_after_update_sweeps() {
    let d = 3;
    let (mut mirror, server) = build_server(2_000, d, 0xF8E5, 4);
    let wl_cfg = WorkloadConfig {
        dim: d,
        anchors: 6,
        jitter: 0.01,
        batches: 10,
        queries_per_batch: 60,
        updates_per_batch: 6,
        insert_fraction: 0.6,
        insert_hot_fraction: 0.4,
        delete_hot_fraction: 0.6,
        k_choices: vec![5, 8],
        seed: 0xF8E6,
    };
    let traffic = mixed_workload(&wl_cfg, &mirror);

    let mut total_hits = 0usize;
    for batch in &traffic {
        server.apply_updates(&batch.updates).unwrap();
        for u in &batch.updates {
            match u {
                Update::Insert(rec) => mirror.push(rec.clone()),
                Update::Delete { id, .. } => mirror.retain(|r| r.id != *id),
            }
        }
        let out = server.run_batch(&batch.queries);
        for (req, resp) in batch.queries.iter().zip(&out.responses) {
            if resp.from_cache {
                total_hits += 1;
                let truth = naive_topk(&mirror, server.scoring(), &req.weights, req.k);
                assert_eq!(
                    resp.ids,
                    truth.ids(),
                    "stale cache hit at {:?} (k={})",
                    req.weights,
                    req.k
                );
            }
        }
    }
    assert!(
        total_hits > 0,
        "anchored jitter traffic must produce cache hits"
    );
    let stats = server.cache_stats();
    assert_eq!(stats.hits as usize, total_hits);
}

/// Concurrent batches from several driver threads share the cache and
/// agree with the oracle (updates quiesced).
#[test]
fn concurrent_batches_share_cache_coherently() {
    let d = 2;
    let (data, server) = build_server(1_000, d, 0xAB42, 2);
    let server = Arc::new(server);
    let anchors = gir::datagen::random_queries(4, d, 0.3, 0xAB43);

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let server = Arc::clone(&server);
            let data = &data;
            let anchors = &anchors;
            scope.spawn(move || {
                let reqs: Vec<TopKRequest> = (0..50)
                    .map(|i| {
                        let a = &anchors[(t + i) % anchors.len()];
                        let j = 0.002 * (i % 5) as f64;
                        let w: Vec<f64> = a
                            .coords()
                            .iter()
                            .map(|&v| (v + j).clamp(0.0, 1.0))
                            .collect();
                        TopKRequest::new(w, 6)
                    })
                    .collect();
                let out = server.run_batch(&reqs);
                for (req, resp) in reqs.iter().zip(&out.responses) {
                    let truth = naive_topk(data, server.scoring(), &req.weights, 6);
                    assert_eq!(resp.ids, truth.ids(), "thread {t} got a wrong answer");
                }
            });
        }
    });
    let stats = server.cache_stats();
    assert!(
        stats.hits > 0,
        "shared anchors across threads should produce hits"
    );
}
