//! Property tests for the shared prune-index (`gir::core::prune`):
//! after any random interleaving of insertions and deletions routed
//! through `PruneIndex::on_insert` / `PruneIndex::on_delete`, the
//! incrementally-maintained index must be *structurally identical* to
//! one rebuilt from scratch (same skyline, same hull-of-skyline), and
//! GIRs served through the index (`GirEngine::gir_indexed`) must match
//! the no-index oracle (`GirEngine::gir`) — same top-k, same region as
//! a point set — for every Phase-2 method, both on a cold shared
//! Phase-2 system and on a reused (delta-maintained) one.

use gir::core::{GirEngine, Method, PruneIndex};
use gir::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// One generated dataset mutation: `op < 6` inserts `attrs`, otherwise
/// `sel` picks a live record to delete.
type Op = (u8, Vec<f64>, u64);

fn build_tree(rows: &[Vec<f64>]) -> (Vec<Record>, RTree) {
    let data: Vec<Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Record::new(i as u64, r.clone()))
        .collect();
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    (data, tree)
}

fn dataset(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n..n + 20)
}

fn ops(d: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..10,
            proptest::collection::vec(0.0f64..1.0, d),
            0u64..1 << 40,
        ),
        6..16,
    )
}

fn sorted_pairs(recs: &[Record]) -> Vec<(u64, Vec<f64>)> {
    let mut v: Vec<(u64, Vec<f64>)> = recs
        .iter()
        .map(|r| (r.id, r.attrs.coords().to_vec()))
        .collect();
    v.sort_by_key(|(id, _)| *id);
    v
}

fn sorted_opt(ids: Option<&[u64]>) -> Option<Vec<u64>> {
    ids.map(|v| {
        let mut v = v.to_vec();
        v.sort_unstable();
        v
    })
}

/// Compares the indexed GIR against the no-index oracle at one query.
fn check_gir_matches_oracle(
    tree: &RTree,
    index: &PruneIndex,
    w: &[f64],
    k: usize,
    probe_seed: &mut u64,
) {
    let engine = GirEngine::new(tree);
    let q = QueryVector::new(w.to_vec());
    let d = w.len();
    for m in [
        Method::SkylinePruning,
        Method::ConvexHullPruning,
        Method::FacetPruning,
    ] {
        let oracle = engine.gir(&q, k, m).unwrap();
        let indexed = engine.gir_indexed(&q, k, m, index).unwrap();
        prop_assert_eq!(
            indexed.result.ids(),
            oracle.result.ids(),
            "{:?}: indexed result differs",
            m
        );
        prop_assert!(indexed.region.contains(&q.weights));
        for _ in 0..25 {
            let wp = PointD::from(
                (0..d)
                    .map(|_| {
                        *probe_seed ^= *probe_seed << 13;
                        *probe_seed ^= *probe_seed >> 7;
                        *probe_seed ^= *probe_seed << 17;
                        (*probe_seed >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect::<Vec<f64>>(),
            );
            let a = indexed.region.contains(&wp);
            let b = oracle.region.contains(&wp);
            if a != b {
                let margin: f64 = indexed
                    .region
                    .halfspaces
                    .iter()
                    .chain(&oracle.region.halfspaces)
                    .map(|h| h.slack(&wp))
                    .fold(f64::INFINITY, |acc, v| acc.min(v.abs()));
                prop_assert!(
                    margin < 1e-6,
                    "{:?}: indexed region ≠ oracle at {:?} (margin {})",
                    m,
                    wp,
                    margin
                );
            }
        }
    }
}

fn check_prune_index_equivalence(rows: &[Vec<f64>], w: Vec<f64>, all_ops: &[Op], k: usize) {
    let (mut live, mut tree) = build_tree(rows);
    let index = PruneIndex::new();
    // Build eagerly (as the first serve miss would) so every op below
    // exercises the *incremental* maintenance path, and prime the
    // shared Phase-2 systems so later queries exercise their
    // delta-maintained reuse.
    let _ = index.snapshot(&tree).unwrap();
    let mut probe_seed = 0x9A0Du64 | 1;
    check_gir_matches_oracle(&tree, &index, &w, k, &mut probe_seed);

    let mut next_id = 9_000_000u64;
    for chunk in all_ops.chunks(3) {
        for (op, attrs, sel) in chunk {
            if *op < 6 || live.len() <= k + 8 {
                let rec = Record::new(next_id, attrs.clone());
                next_id += 1;
                tree.insert(rec.clone()).unwrap();
                index.on_insert(&rec);
                live.push(rec);
            } else {
                let idx = (*sel % live.len() as u64) as usize;
                let victim = live.swap_remove(idx);
                assert!(tree.delete(victim.id, &victim.attrs).unwrap());
                index.on_delete(&tree, victim.id, &victim.attrs).unwrap();
            }
        }

        // Structural equivalence: incrementally-maintained index ≡ one
        // rebuilt from scratch on the mutated tree — same skyline (ids
        // *and* attributes), same hull-of-skyline.
        let maintained = index.snapshot(&tree).unwrap();
        let rebuilt_index = PruneIndex::new();
        let rebuilt = rebuilt_index.snapshot(&tree).unwrap();
        prop_assert_eq!(
            sorted_pairs(&maintained.skyline_records()),
            sorted_pairs(&rebuilt.skyline_records()),
            "incremental skyline diverged from rebuild"
        );
        prop_assert_eq!(
            sorted_opt(maintained.hull_ids()),
            sorted_opt(rebuilt.hull_ids()),
            "incremental hull diverged from rebuild"
        );

        // Served GIRs match the no-index oracle on the mutated tree —
        // this also validates the delta-maintained Phase-2 systems
        // (append-on-insert / drop-on-contributor-delete), since keys
        // primed before the updates are reused here when still valid.
        check_gir_matches_oracle(&tree, &index, &w, k, &mut probe_seed);
    }
    prop_assert_eq!(index.stats().builds, 1, "maintenance must stay incremental");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 2-d: rotating-line FP territory, small skylines.
    #[test]
    fn prune_index_matches_rebuild_2d(
        rows in dataset(2, 45),
        w in proptest::collection::vec(0.05f64..1.0, 2),
        all_ops in ops(2),
        k in 1usize..5,
    ) {
        check_prune_index_equivalence(&rows, w, &all_ops, k);
    }

    /// 3-d: the star-hull sweep plus hull-of-skyline reuse.
    #[test]
    fn prune_index_matches_rebuild_3d(
        rows in dataset(3, 60),
        w in proptest::collection::vec(0.05f64..1.0, 3),
        all_ops in ops(3),
        k in 1usize..6,
    ) {
        check_prune_index_equivalence(&rows, w, &all_ops, k);
    }

    /// 4-d: larger skylines, degenerate hulls more likely.
    #[test]
    fn prune_index_matches_rebuild_4d(
        rows in dataset(4, 50),
        w in proptest::collection::vec(0.05f64..1.0, 4),
        all_ops in ops(4),
        k in 1usize..4,
    ) {
        check_prune_index_equivalence(&rows, w, &all_ops, k);
    }
}
