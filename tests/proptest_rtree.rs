//! Model-based property tests for the R*-tree: arbitrary interleavings
//! of inserts, deletes and window queries must agree with a flat-map
//! model, and structural invariants must hold at every step.

use gir::rtree::{Mbb, Node, NodeEntries, RTree, Record};
use gir::storage::{MemPageStore, PageStore, PAGE_SIZE};
use gir_geometry::vector::PointD;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert { coords: Vec<f64> },
    DeleteNth(usize),
    Window { lo: Vec<f64>, hi: Vec<f64> },
}

fn ops(d: usize, n: usize) -> impl Strategy<Value = Vec<Op>> {
    let insert = proptest::collection::vec(0.0f64..1.0, d).prop_map(|coords| Op::Insert { coords });
    let delete = (0usize..1000).prop_map(Op::DeleteNth);
    let window = (
        proptest::collection::vec(0.0f64..1.0, d),
        proptest::collection::vec(0.0f64..1.0, d),
    )
        .prop_map(|(a, b)| {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            Op::Window { lo, hi }
        });
    proptest::collection::vec(prop_oneof![4 => insert, 2 => delete, 1 => window], n..n * 2)
}

fn check_invariants(tree: &RTree) {
    let mut stack = vec![(tree.root_page(), true)];
    while let Some((page, is_root)) = stack.pop() {
        let node = tree.read_node(page).unwrap();
        if !is_root {
            assert!(
                node.len() >= Node::min_fill(node.capacity()),
                "underfull non-root node"
            );
        }
        if let NodeEntries::Internal(children) = node.entries {
            for (mbb, child) in children {
                let child_mbb = tree.read_node(child).unwrap().mbb();
                assert!(mbb.contains_mbb(&child_mbb), "entry MBB too small");
                stack.push((child, false));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rtree_agrees_with_model(script in ops(3, 60)) {
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let mut tree = RTree::new(store, 3).unwrap();
        let mut model: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        let mut next_id = 0u64;

        for op in script {
            match op {
                Op::Insert { coords } => {
                    tree.insert(Record::new(next_id, coords.clone())).unwrap();
                    model.insert(next_id, coords);
                    next_id += 1;
                }
                Op::DeleteNth(nth) => {
                    if !model.is_empty() {
                        let key = *model.keys().nth(nth % model.len()).unwrap();
                        let coords = model.remove(&key).unwrap();
                        prop_assert!(
                            tree.delete(key, &PointD::from(coords)).unwrap(),
                            "live record {} not found", key
                        );
                    }
                }
                Op::Window { lo, hi } => {
                    let window = Mbb {
                        lo: PointD::from(lo.clone()),
                        hi: PointD::from(hi.clone()),
                    };
                    let mut got: Vec<u64> =
                        tree.window_query(&window).unwrap().iter().map(|r| r.id).collect();
                    got.sort_unstable();
                    let mut expect: Vec<u64> = model
                        .iter()
                        .filter(|(_, c)| {
                            c.iter()
                                .enumerate()
                                .all(|(i, &x)| lo[i] <= x && x <= hi[i])
                        })
                        .map(|(&id, _)| id)
                        .collect();
                    expect.sort_unstable();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(tree.len() as usize, model.len());
        }
        check_invariants(&tree);

        // Final full-content comparison.
        let mut all: Vec<u64> = tree.scan_all().unwrap().iter().map(|r| r.id).collect();
        all.sort_unstable();
        let expect: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn bulk_load_equals_incremental_content(rows in proptest::collection::vec(
        proptest::collection::vec(0.0f64..1.0, 2), 1..300)
    ) {
        let records: Vec<Record> = rows
            .iter()
            .enumerate()
            .map(|(i, c)| Record::new(i as u64, c.clone()))
            .collect();
        let bulk = RTree::bulk_load(
            Arc::new(MemPageStore::new(PAGE_SIZE)) as Arc<dyn PageStore>,
            &records,
        )
        .unwrap();
        let mut inc = RTree::new(
            Arc::new(MemPageStore::new(PAGE_SIZE)) as Arc<dyn PageStore>,
            2,
        )
        .unwrap();
        for r in &records {
            inc.insert(r.clone()).unwrap();
        }
        let mut a: Vec<u64> = bulk.scan_all().unwrap().iter().map(|r| r.id).collect();
        let mut b: Vec<u64> = inc.scan_all().unwrap().iter().map(|r| r.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        check_invariants(&bulk);
        check_invariants(&inc);
    }
}
