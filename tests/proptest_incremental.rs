//! Property tests for the incremental maintenance engine
//! (`gir::core::maintenance`): after any random interleaving of
//! insertions and deletions — applied as coalesced `DeltaBatch`es with
//! classify → shrink / repair / recompute — the maintained `GirRegion`
//! must be *identical* to a from-scratch recompute oracle: same top-k,
//! same region as a point set, and (after a facet repair) the same
//! reduced facet set.
//!
//! Both region semantics are maintained in lockstep: the
//! order-sensitive GIR (classified against `p_k`, repaired by
//! `repair_region`) and the order-insensitive GIR\* (classified against
//! every `R⁻` per-rank pivot, repaired by `repair_region_star` — whose
//! output is proven identical to a from-scratch `gir_star` recompute on
//! the mutated tree, the delta-repair acceptance bar of §7.1 support).

use gir::core::gir_star::naive_gir_star_contains;
use gir::core::maintenance::{DeltaBatch, UpdateImpact};
use gir::core::{repair_region, repair_region_star, GirRegion, Method, RegionKind};
use gir::geometry::hyperplane::{HalfSpace, Provenance};
use gir::prelude::*;
use gir::query::naive_topk;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// One generated dataset mutation: `op < 6` inserts `attrs`, otherwise
/// `sel` picks a live record to delete.
type Op = (u8, Vec<f64>, u64);

fn build_tree(rows: &[Vec<f64>]) -> (Vec<Record>, RTree) {
    let data: Vec<Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Record::new(i as u64, r.clone()))
        .collect();
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    (data, tree)
}

fn dataset(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n..n + 20)
}

fn ops(d: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..10,
            proptest::collection::vec(0.0f64..1.0, d),
            0u64..1 << 40,
        ),
        6..16,
    )
}

/// True when the top-k at `w` is separated from rank k+1 (and internally)
/// by a clear score gap — boundary-epsilon interleavings are skipped, as
/// every exact test in this suite does.
fn topk_is_stable(data: &[Record], scoring: &ScoringFunction, w: &PointD, k: usize) -> bool {
    let mut scores: Vec<f64> = data.iter().map(|r| scoring.score(w, &r.attrs)).collect();
    scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
    scores
        .windows(2)
        .take(k)
        .all(|pair| pair[0] - pair[1] > 1e-7)
}

/// The non-result facets of the region's exact facet set, keyed by
/// contributing record id (`star` selects the GIR\* provenance).
fn facet_contributors_kind(region: &GirRegion, star: bool) -> Option<Vec<(u64, HalfSpace)>> {
    let mut facets: Vec<(u64, HalfSpace)> = region
        .reduce()
        .ok()?
        .facets
        .into_iter()
        .filter_map(|h| match h.provenance {
            Provenance::NonResult { record_id } if !star => Some((record_id, h)),
            Provenance::StarNonResult { record_id, .. } if star => Some((record_id, h)),
            _ => None,
        })
        .collect();
    facets.sort_by_key(|(id, _)| *id);
    facets.dedup_by_key(|(id, _)| *id);
    Some(facets)
}

fn facet_contributors(region: &GirRegion) -> Option<Vec<(u64, HalfSpace)>> {
    facet_contributors_kind(region, false)
}

/// How far `h` can be violated anywhere in `region` (≤ 0 means the
/// constraint already holds throughout).
fn max_violation(region: &GirRegion, h: &HalfSpace) -> f64 {
    let cons: Vec<(PointD, f64)> = region
        .halfspaces
        .iter()
        .map(|c| (c.normal.clone(), c.offset))
        .collect();
    gir::geometry::lp::maximize(&h.normal, &cons, 0.0, 1.0).value - h.offset
}

fn check_incremental_equivalence(rows: &[Vec<f64>], w: Vec<f64>, all_ops: &[Op], k: usize) {
    let d = w.len();
    let scoring = ScoringFunction::linear(d);
    let (mut mirror, mut tree) = build_tree(rows);
    let q = QueryVector::new(w);

    let (mut region, mut result) = {
        let engine = GirEngine::new(&tree);
        let out = engine.gir(&q, k, Method::FacetPruning).unwrap();
        (out.region, out.result)
    };
    // The GIR* companion entry, maintained in lockstep under its own
    // (per-rank-pivot) classification and repair.
    let (mut star_region, mut star_result) = {
        let engine = GirEngine::new(&tree);
        let out = engine.gir_star(&q, k, Method::FacetPruning).unwrap();
        (out.region, out.result)
    };
    let mut next_id = 9_000_000u64;
    let mut probe_seed = 0x14C0u64 | 1;

    for chunk in all_ops.chunks(3) {
        // Apply the chunk to the tree and mirror, coalescing it into a
        // DeltaBatch exactly as the serving layer does.
        let mut batch = DeltaBatch::new();
        for (op, attrs, sel) in chunk {
            if *op < 6 || mirror.len() <= k + 8 {
                let rec = Record::new(next_id, attrs.clone());
                next_id += 1;
                tree.insert(rec.clone()).unwrap();
                mirror.push(rec.clone());
                batch.record_insert(&rec);
            } else {
                let idx = (*sel % mirror.len() as u64) as usize;
                let victim = mirror.swap_remove(idx);
                assert!(tree.delete(victim.id, &victim.attrs).unwrap());
                batch.record_delete_at(victim.id, &victim.attrs);
            }
        }

        // Maintain: classify once, then shrink / repair / recompute.
        let verdict = batch.classify(&region, &result, &scoring);
        let repaired = verdict.impact == UpdateImpact::NeedsRepair;
        match verdict.impact {
            UpdateImpact::Unaffected => {}
            UpdateImpact::Shrunk => region.halfspaces.extend(verdict.shrinks),
            UpdateImpact::NeedsRepair => {
                region = repair_region(
                    &tree,
                    &scoring,
                    &result,
                    &region,
                    &verdict.removed_contributors,
                    &verdict.shrinks,
                )
                .unwrap();
            }
            UpdateImpact::Invalidated => {
                let engine = GirEngine::new(&tree);
                let out = engine.gir(&q, k, Method::FacetPruning).unwrap();
                region = out.region;
                result = out.result;
            }
        }

        // Maintain the GIR* entry: classification tests every R⁻
        // pivot, repair is the root-seeded concurrent star sweep.
        let star_verdict =
            batch.classify_kind(&star_region, &star_result, &scoring, RegionKind::GirStar);
        let star_repaired = star_verdict.impact == UpdateImpact::NeedsRepair;
        match star_verdict.impact {
            UpdateImpact::Unaffected => {}
            UpdateImpact::Shrunk => star_region.halfspaces.extend(star_verdict.shrinks),
            UpdateImpact::NeedsRepair => {
                star_region = repair_region_star(
                    &tree,
                    &scoring,
                    &star_result,
                    &star_region,
                    &star_verdict.removed_contributors,
                    &star_verdict.shrinks,
                )
                .unwrap();
            }
            UpdateImpact::Invalidated => {
                let engine = GirEngine::new(&tree);
                let out = engine.gir_star(&q, k, Method::FacetPruning).unwrap();
                star_region = out.region;
                star_result = out.result;
            }
        }

        // Skip oracle comparisons when the true top-k sits on a score
        // tie: classification legitimately goes either way there.
        if !topk_is_stable(&mirror, &scoring, &q.weights, k) {
            continue;
        }

        // Freshness: the maintained result is the true top-k.
        prop_assert_eq!(
            result.ids(),
            naive_topk(&mirror, &scoring, &q.weights, k).ids(),
            "maintained result went stale ({:?})",
            verdict.impact
        );

        // Oracle: recompute the GIR from scratch on the mutated tree.
        let engine = GirEngine::new(&tree);
        let oracle = engine.gir(&q, k, Method::FacetPruning).unwrap();
        prop_assert_eq!(oracle.result.ids(), result.ids());

        // Identical region as a point set (boundary epsilons excepted).
        for _ in 0..30 {
            let wp = PointD::from(
                (0..d)
                    .map(|_| {
                        probe_seed ^= probe_seed << 13;
                        probe_seed ^= probe_seed >> 7;
                        probe_seed ^= probe_seed << 17;
                        (probe_seed >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect::<Vec<f64>>(),
            );
            let ours = region.contains(&wp);
            let theirs = oracle.region.contains(&wp);
            if ours != theirs {
                let margin: f64 = region
                    .halfspaces
                    .iter()
                    .chain(&oracle.region.halfspaces)
                    .map(|h| h.slack(&wp))
                    .fold(f64::INFINITY, |m, v| m.min(v.abs()));
                prop_assert!(
                    margin < 1e-6,
                    "maintained region ≠ recompute at {:?} after {:?} (margin {})",
                    wp,
                    verdict.impact,
                    margin
                );
            }
        }

        // Star freshness: the maintained GIR* result is the true top-k
        // *composition* (order is not pinned by Definition 2).
        let sorted = |mut v: Vec<u64>| {
            v.sort_unstable();
            v
        };
        prop_assert_eq!(
            sorted(star_result.ids()),
            sorted(naive_topk(&mirror, &scoring, &q.weights, k).ids()),
            "maintained GIR* composition went stale ({:?})",
            star_verdict.impact
        );

        // Star oracle: the delta-maintained GIR* must be identical to a
        // from-scratch `gir_star` recompute on the mutated tree, and
        // every admitted point must satisfy the GIR* law.
        let star_oracle = engine.gir_star(&q, k, Method::FacetPruning).unwrap();
        let star_ids: HashSet<u64> = star_result.ids().into_iter().collect();
        for _ in 0..30 {
            let wp = PointD::from(
                (0..d)
                    .map(|_| {
                        probe_seed ^= probe_seed << 13;
                        probe_seed ^= probe_seed >> 7;
                        probe_seed ^= probe_seed << 17;
                        (probe_seed >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect::<Vec<f64>>(),
            );
            let ours = star_region.contains(&wp);
            let theirs = star_oracle.region.contains(&wp);
            let margin: f64 = star_region
                .halfspaces
                .iter()
                .chain(&star_oracle.region.halfspaces)
                .map(|h| h.slack(&wp))
                .fold(f64::INFINITY, |m, v| m.min(v.abs()));
            if ours != theirs {
                prop_assert!(
                    margin < 1e-6,
                    "maintained GIR* ≠ recompute at {:?} after {:?} (margin {})",
                    wp,
                    star_verdict.impact,
                    margin
                );
            }
            if ours && !naive_gir_star_contains(&mirror, &scoring, &star_ids, &wp) {
                prop_assert!(
                    margin < 1e-6,
                    "maintained GIR* admits a stale composition at {:?}",
                    wp
                );
            }
        }
        if star_repaired {
            if let (Some(ours), Some(theirs)) = (
                facet_contributors_kind(&star_region, true),
                facet_contributors_kind(&star_oracle.region, true),
            ) {
                for (id, h) in &ours {
                    if !theirs.iter().any(|(t, _)| t == id) {
                        let v = max_violation(&star_oracle.region, h);
                        prop_assert!(
                            v <= 1e-6,
                            "star repair facet {} cuts the oracle region by {}",
                            id,
                            v
                        );
                    }
                }
                for (id, h) in &theirs {
                    if !ours.iter().any(|(o, _)| o == id) {
                        let v = max_violation(&star_region, h);
                        prop_assert!(
                            v <= 1e-6,
                            "star oracle facet {} cuts the repaired region by {}",
                            id,
                            v
                        );
                    }
                }
            }
        }

        // After a repair the half-space sets must agree facet-for-facet:
        // the same non-result records bound both polytopes. Degenerate
        // (zero-measure) facets may be attributed differently by the two
        // computations, so any one-sided claim must be verifiably
        // ε-redundant on the other polytope.
        if repaired {
            if let (Some(ours), Some(theirs)) = (
                facet_contributors(&region),
                facet_contributors(&oracle.region),
            ) {
                for (id, h) in &ours {
                    if !theirs.iter().any(|(t, _)| t == id) {
                        let v = max_violation(&oracle.region, h);
                        prop_assert!(
                            v <= 1e-6,
                            "repair facet {} cuts the oracle region by {}",
                            id,
                            v
                        );
                    }
                }
                for (id, h) in &theirs {
                    if !ours.iter().any(|(o, _)| o == id) {
                        let v = max_violation(&region, h);
                        prop_assert!(
                            v <= 1e-6,
                            "oracle facet {} cuts the repaired region by {}",
                            id,
                            v
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// 2-d: the rotating-line repair path.
    #[test]
    fn incremental_matches_recompute_2d(
        rows in dataset(2, 45),
        w in proptest::collection::vec(0.05f64..1.0, 2),
        all_ops in ops(2),
        k in 1usize..5,
    ) {
        check_incremental_equivalence(&rows, w, &all_ops, k);
    }

    /// 3-d: the star-hull repair path with interim pruning.
    #[test]
    fn incremental_matches_recompute_3d(
        rows in dataset(3, 55),
        w in proptest::collection::vec(0.05f64..1.0, 3),
        all_ops in ops(3),
        k in 1usize..6,
    ) {
        check_incremental_equivalence(&rows, w, &all_ops, k);
    }
}
