//! The durability differential: **recovery ≡ never-crashed**.
//!
//! A [`DurableServer`] over a [`ShardedGirServer`] runs random churn
//! with a crash point injected at a proptest-chosen mutating-I/O op
//! index ([`CrashClock`] / [`CrashDir`]): the fatal append persists a
//! deterministic *torn prefix* of its frame, and every later mutating
//! op fails, leaving the in-memory server in degraded read-only mode
//! (queries keep serving, `apply_updates` returns `Err`, never a
//! panic). The surviving [`MemDir`] is the disk image; "reboot" =
//! [`DurableServer::recover_in`] over it.
//!
//! The oracle is a *never-crashed* server built from the same initial
//! records that applies exactly the committed batch prefix recovery
//! reports. The committed prefix is `ok` or `ok + 1` batches — the
//! classic ambiguity: an append whose ack was lost may still have
//! persisted its full frame. Equivalence is then asserted on every
//! observable the paper's serving layer exposes:
//!
//! * the record multiset, **bit-exactly** (the wire format must not
//!   perturb a single f64 bit — facets would move), and the per-shard
//!   partition (placement is pure, so the cut must reproduce it);
//! * top-k responses for probe queries under both [`RegionKind`]s,
//!   across a miss pass *and* a cache-hit pass (same `ids`, same
//!   `from_cache`, same `failed`);
//! * GIR region facets (reduced non-result contributor ids) computed
//!   over both datasets;
//! * maintenance counters of one further identical update batch
//!   applied to both sides (evict/repair/shrink/untouched classify the
//!   same way), plus post-maintenance probe agreement (cache
//!   freshness).
//!
//! Grid: S ∈ {1, 2, 4, 8} × both placements × both kinds × random
//! fsync policy, snapshot cadence, crash budget and torn seed. Honors
//! `PROPTEST_CASES` and `GIR_SEED` (the vendored proptest folds them
//! into its per-test deterministic RNG).

mod common;

use common::oracle::{
    build_tree, dataset_key, materialize, probe_requests, reduced_contributors, report_key, Op,
    SHARDINGS,
};
use gir::core::{GirEngine, Method};
use gir::prelude::*;
use gir::serve::{DurabilityConfig, DurabilityError, DurableServer};
use gir::shard::ShardedGirServer;
use gir::storage::{CrashClock, CrashDir, FsyncPolicy, MemDir};
use proptest::prelude::*;

const FSYNCS: [FsyncPolicy; 3] = [
    FsyncPolicy::Always,
    FsyncPolicy::EveryN(2),
    FsyncPolicy::Never,
];

fn server_cfg(s: usize, p: Placement) -> ShardedServerConfig {
    ShardedServerConfig {
        threads: 1, // deterministic probe order: hit patterns comparable
        data_shards: s,
        placement: p,
        cache_shards: 4,
        cache_capacity: 16,
        method: Method::FacetPruning,
        force_path: None,
    }
}

fn build_server(d: usize, records: &[Record], s: usize, p: Placement) -> ShardedGirServer {
    ShardedGirServer::build(d, records, ScoringFunction::linear(d), server_cfg(s, p)).unwrap()
}

fn assert_responses_equal(
    got: &gir::serve::BatchResult,
    want: &gir::serve::BatchResult,
    ctx: &str,
) {
    prop_assert_eq!(got.responses.len(), want.responses.len());
    for (i, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
        prop_assert_eq!(&g.ids, &w.ids, "{}: probe {} top-k diverged", ctx, i);
        prop_assert_eq!(
            g.failed,
            w.failed,
            "{}: probe {} failed-flag diverged",
            ctx,
            i
        );
        prop_assert_eq!(
            g.from_cache,
            w.from_cache,
            "{}: probe {} hit/miss diverged",
            ctx,
            i
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    d: usize,
    records: &[Record],
    batches: &[Vec<Update>],
    requests: &[TopKRequest],
    s: usize,
    p: Placement,
    budget: u64,
    torn_seed: u64,
    fsync: FsyncPolicy,
    snapshot_every: u64,
) {
    let ctx = format!("S={s} {p:?} fsync={fsync:?} snap={snapshot_every} budget={budget}");
    let disk = MemDir::new();
    let clock = CrashClock::new(u64::MAX, torn_seed);
    let dcfg = DurabilityConfig {
        dir: std::path::PathBuf::new(), // unused by the *_in constructors
        fsync,
        snapshot_every,
    };
    let durable = DurableServer::create_in(
        Box::new(CrashDir::new(disk.clone(), clock.clone())),
        build_server(d, records, s, p),
        dcfg.clone(),
    )
    .unwrap();

    // The fault window opens only now: creation I/O was free.
    clock.arm(budget);
    let mut ok = 0u64;
    let mut crashed = false;
    for batch in batches {
        // Interleaved probes admit cache entries pre-crash (reads never
        // tick the crash clock).
        let pre = durable.run_batch(requests);
        prop_assert_eq!(pre.responses.len(), requests.len());
        match durable.apply_updates(batch) {
            Ok(_) => ok += 1,
            Err(_) => {
                crashed = true;
                // Degraded read-only mode: later writes are rejected up
                // front, reads keep serving — and never panic.
                prop_assert!(
                    durable.is_read_only(),
                    "{}: apply failed but not read-only",
                    ctx
                );
                match durable.apply_updates(&batches[0]) {
                    Err(DurabilityError::ReadOnly) => {}
                    Err(e) => panic!("{ctx}: expected ReadOnly, got {e}"),
                    Ok(_) => panic!("{ctx}: write accepted after degradation"),
                }
                let post = durable.run_batch(requests);
                prop_assert_eq!(post.responses.len(), requests.len());
                prop_assert!(
                    post.responses.iter().all(|r| !r.failed),
                    "{}: degraded reads failed",
                    ctx
                );
                break;
            }
        }
    }
    drop(durable);
    if std::env::var("CRASH_DEBUG").is_ok() {
        eprintln!("{ctx}: ok={ok} crashed={crashed}");
    }

    // Reboot: recover from the surviving disk image. The inner MemDir
    // holds exactly what "survived the crash", torn prefix included.
    clock.disarm();
    let (recovered, report) = DurableServer::recover_in(Box::new(disk), dcfg, |snap| {
        let recs: Vec<Record> = snap.shards.into_iter().flatten().collect();
        ShardedGirServer::build(d, &recs, ScoringFunction::linear(d), server_cfg(s, p))
    })
    .unwrap();
    let total = report.batches();
    prop_assert!(
        total >= ok && total <= ok + u64::from(crashed),
        "{}: recovered {} batches outside committed window [{}, {}]",
        ctx,
        total,
        ok,
        ok + u64::from(crashed)
    );

    // The never-crashed oracle applies exactly the committed prefix.
    let oracle = build_server(d, records, s, p);
    for batch in &batches[..total as usize] {
        oracle.apply_updates(batch).unwrap();
    }

    // Dataset: bit-exact multiset, identical partition.
    let rec_records = recovered.inner().records_snapshot().unwrap();
    let ora_records = oracle.records_snapshot().unwrap();
    prop_assert_eq!(
        dataset_key(rec_records.clone()),
        dataset_key(ora_records.clone()),
        "{}: recovered record multiset diverged",
        ctx
    );
    prop_assert_eq!(
        recovered.inner().occupancy(),
        oracle.occupancy(),
        "{}: recovered partition diverged",
        ctx
    );

    // Responses: a miss pass, then a hit pass — ids, failure flags and
    // hit/miss pattern must match (both start from a cold cache).
    for pass in 0..2 {
        let got = recovered.run_batch(requests);
        let want = oracle.run_batch(requests);
        assert_responses_equal(&got, &want, &format!("{ctx} pass {pass}"));
    }
    prop_assert_eq!(
        recovered.inner().cache_stats().hits,
        oracle.cache_stats().hits,
        "{}: cache freshness diverged",
        ctx
    );

    // Region facets: the GIR over both datasets (records sorted by id
    // so tree construction is identical) must agree facet-for-facet.
    let sort = |mut v: Vec<Record>| {
        v.sort_unstable_by_key(|r| r.id);
        v
    };
    let (rec_tree, ora_tree) = (
        build_tree(&sort(rec_records)),
        build_tree(&sort(ora_records)),
    );
    let q = QueryVector::new(requests[0].weights.clone());
    let k = requests[0].k;
    let got = GirEngine::new(&rec_tree)
        .gir(&q, k, Method::FacetPruning)
        .unwrap();
    let want = GirEngine::new(&ora_tree)
        .gir(&q, k, Method::FacetPruning)
        .unwrap();
    prop_assert_eq!(
        got.result.ids(),
        want.result.ids(),
        "{}: GIR top-k diverged",
        ctx
    );
    prop_assert_eq!(
        reduced_contributors(&got.region),
        reduced_contributors(&want.region),
        "{}: GIR facets diverged",
        ctx
    );

    // Maintenance: one further identical batch classifies the cached
    // entries the same way on both sides, and probes still agree.
    if (total as usize) < batches.len() {
        let extra = &batches[total as usize];
        let r_rec = recovered.apply_updates(extra).unwrap();
        let r_ora = oracle.apply_updates(extra).unwrap();
        prop_assert_eq!(
            report_key(&r_rec),
            report_key(&r_ora),
            "{}: maintenance counters diverged",
            ctx
        );
        let got = recovered.run_batch(requests);
        let want = oracle.run_batch(requests);
        assert_responses_equal(&got, &want, &format!("{ctx} post-maintenance"));
    }
}

#[allow(clippy::too_many_arguments)] // one arg per proptest-drawn knob
fn run_case(
    d: usize,
    floats: Vec<Vec<f64>>,
    ops: Vec<Vec<Op>>,
    probes: Vec<Vec<f64>>,
    k: usize,
    budget: u64,
    torn_seed: u64,
    fsync_idx: usize,
    snapshot_every: u64,
) {
    let records: Vec<Record> = floats
        .into_iter()
        .enumerate()
        .map(|(i, attrs)| Record::new(i as u64, attrs))
        .collect();
    let batches = materialize(&records, &ops);
    let requests = probe_requests(&probes, k);
    let fsync = FSYNCS[fsync_idx % FSYNCS.len()];
    for (s, p) in SHARDINGS {
        run_one(
            d,
            &records,
            &batches,
            &requests,
            s,
            p,
            budget,
            torn_seed,
            fsync,
            snapshot_every,
        );
    }
}

macro_rules! crash_suite {
    ($name:ident, $d:literal, $cases:literal) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases($cases))]
            #[test]
            fn $name(
                floats in proptest::collection::vec(
                    proptest::collection::vec(0.0f64..1.0, $d), 60..110),
                ops in proptest::collection::vec(
                    proptest::collection::vec(
                        (0u8..10, proptest::collection::vec(0.0f64..1.0, $d), 0u64..1 << 40),
                        2..5),
                    4..8),
                probes in proptest::collection::vec(
                    proptest::collection::vec(0.05f64..0.95, $d), 3),
                k in 3usize..8,
                budget in 1u64..48,
                torn_seed in 1u64..u64::MAX,
                fsync_idx in 0usize..3,
                snapshot_every in 1u64..5,
            ) {
                run_case($d, floats, ops, probes, k, budget, torn_seed,
                         fsync_idx, snapshot_every);
            }
        }
    };
}

crash_suite!(recovery_equals_never_crashed_d2, 2, 4);
crash_suite!(recovery_equals_never_crashed_d3, 3, 4);
