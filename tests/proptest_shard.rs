//! The sharding differential harness: a GIR computed over a
//! partitioned dataset (`gir::shard::ShardedDataset` — per-shard BRS
//! frontiers merged into the global top-k, per-shard Phase-2 systems
//! intersected into one region) must be **equivalent to the
//! single-tree oracle** (`GirEngine::gir`):
//!
//! * same top-k (composition *and* order),
//! * same region as a point set (sampled membership, boundary-epsilon
//!   disagreements tolerated),
//! * same reduced facet set (the non-redundant boundary, compared by
//!   contributor ids; ids differing only by a facet that grazes the
//!   other polytope's boundary are tolerated as ties),
//!
//! for S ∈ {1, 2, 4, 8}, both placement policies, every pruned Phase-2
//! method (SP / CP / FP), d ∈ {2..5}, and — crucially — **after every
//! chunk of a random update interleaving** routed through the sharded
//! update path (owning shard only) and the oracle tree in lockstep.

mod common;

use common::oracle::{build_tree, reduced_facets, Op, SHARDINGS};
use gir::core::{GirEngine, GirRegion, Method};
use gir::prelude::*;
use gir::shard::ShardedDataset;
use proptest::prelude::*;

const METHODS: [Method; 3] = [
    Method::SkylinePruning,
    Method::ConvexHullPruning,
    Method::FacetPruning,
];

fn dataset(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n..n + 15)
}

fn ops(d: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..10,
            proptest::collection::vec(0.0f64..1.0, d),
            0u64..1 << 40,
        ),
        6..14,
    )
}

/// A facet id appearing on only one side is tolerated iff its
/// half-space grazes the other polytope's boundary (an exact tie the
/// two reductions broke differently).
fn facet_is_tie(region: &GirRegion, id: u64, other_vertices: &[PointD]) -> bool {
    region
        .halfspaces
        .iter()
        .filter(|h| {
            matches!(
                h.provenance,
                gir::geometry::hyperplane::Provenance::NonResult { record_id } if record_id == id
            )
        })
        .all(|h| {
            other_vertices
                .iter()
                .map(|v| h.slack(v).abs())
                .fold(f64::INFINITY, f64::min)
                < 1e-6
        })
}

fn check_regions_equivalent(
    m: Method,
    s: usize,
    oracle: &GirRegion,
    sharded: &GirRegion,
    d: usize,
    probe_seed: &mut u64,
) {
    // Sampled point membership.
    for _ in 0..25 {
        let wp = PointD::from(
            (0..d)
                .map(|_| {
                    *probe_seed ^= *probe_seed << 13;
                    *probe_seed ^= *probe_seed >> 7;
                    *probe_seed ^= *probe_seed << 17;
                    (*probe_seed >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect::<Vec<f64>>(),
        );
        let a = oracle.contains(&wp);
        let b = sharded.contains(&wp);
        if a != b {
            let margin: f64 = oracle
                .halfspaces
                .iter()
                .chain(&sharded.halfspaces)
                .map(|h| h.slack(&wp))
                .fold(f64::INFINITY, |acc, v| acc.min(v.abs()));
            prop_assert!(
                margin < 1e-6,
                "{:?} S={}: sharded region ≠ oracle at {:?} (margin {})",
                m,
                s,
                wp,
                margin
            );
        }
    }

    // Reduced facet set: the same non-redundant boundary.
    if let (Some((oracle_ids, oracle_verts)), Some((sharded_ids, sharded_verts))) =
        (reduced_facets(oracle), reduced_facets(sharded))
    {
        for id in oracle_ids.symmetric_difference(&sharded_ids) {
            let (region, other_verts) = if oracle_ids.contains(id) {
                (oracle, &sharded_verts)
            } else {
                (sharded, &oracle_verts)
            };
            prop_assert!(
                facet_is_tie(region, *id, other_verts),
                "{:?} S={}: facet contributor {} on one side only \
                 (oracle {:?} vs sharded {:?})",
                m,
                s,
                id,
                oracle_ids,
                sharded_ids
            );
        }
    }
}

fn check_sharded_equivalence(rows: &[Vec<f64>], w: Vec<f64>, all_ops: &[Op], k: usize) {
    let d = w.len();
    let mut live: Vec<Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Record::new(i as u64, r.clone()))
        .collect();
    let mut oracle_tree = build_tree(&live);
    let mut sharded: Vec<(usize, ShardedDataset)> = SHARDINGS
        .iter()
        .map(|&(s, placement)| (s, ShardedDataset::build(d, &live, s, placement).unwrap()))
        .collect();
    let scoring = ScoringFunction::linear(d);
    let q = QueryVector::new(w);
    let mut probe_seed = 0x5A4Du64 | 1;
    let mut next_id = 9_000_000u64;

    // Initial equivalence, then after every chunk of the interleaving.
    let mut chunks: Vec<&[Op]> = vec![&[]];
    chunks.extend(all_ops.chunks(3));
    for chunk in chunks {
        for (op, attrs, sel) in chunk {
            if *op < 6 || live.len() <= k + 8 {
                let rec = Record::new(next_id, attrs.clone());
                next_id += 1;
                oracle_tree.insert(rec.clone()).unwrap();
                for (_, data) in &mut sharded {
                    data.insert(rec.clone()).unwrap();
                }
                live.push(rec);
            } else {
                let idx = (*sel % live.len() as u64) as usize;
                let victim = live.swap_remove(idx);
                assert!(oracle_tree.delete(victim.id, &victim.attrs).unwrap());
                for (_, data) in &mut sharded {
                    assert!(data.delete(victim.id, &victim.attrs).unwrap());
                }
            }
        }

        let engine = GirEngine::new(&oracle_tree);
        for m in METHODS {
            let oracle = engine.gir(&q, k, m).unwrap();
            for (s, data) in &sharded {
                let got = data.gir(&scoring, &q, k, m).unwrap();
                prop_assert_eq!(
                    got.result.ids(),
                    oracle.result.ids(),
                    "{:?} S={}: merged top-k differs from single-tree BRS",
                    m,
                    s
                );
                check_regions_equivalent(m, *s, &oracle.region, &got.region, d, &mut probe_seed);
            }
        }
    }

    // Occupancy sanity: every sharding still holds the full dataset.
    for (s, data) in &sharded {
        prop_assert_eq!(data.len(), live.len() as u64, "S={}: lost records", s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 2-d: rotating-line FP, small skylines, cheap reductions.
    #[test]
    fn sharded_gir_matches_oracle_2d(
        rows in dataset(2, 45),
        w in proptest::collection::vec(0.05f64..1.0, 2),
        all_ops in ops(2),
        k in 1usize..5,
    ) {
        check_sharded_equivalence(&rows, w, &all_ops, k);
    }

    /// 3-d: the incident-facet star plus hull-of-skyline reuse.
    #[test]
    fn sharded_gir_matches_oracle_3d(
        rows in dataset(3, 55),
        w in proptest::collection::vec(0.05f64..1.0, 3),
        all_ops in ops(3),
        k in 1usize..6,
    ) {
        check_sharded_equivalence(&rows, w, &all_ops, k);
    }

    /// 4-d: larger skylines, degenerate hulls more likely.
    #[test]
    fn sharded_gir_matches_oracle_4d(
        rows in dataset(4, 50),
        w in proptest::collection::vec(0.05f64..1.0, 4),
        all_ops in ops(4),
        k in 1usize..4,
    ) {
        check_sharded_equivalence(&rows, w, &all_ops, k);
    }

    /// 5-d: the dimensionality ceiling of the paper's experiments.
    #[test]
    fn sharded_gir_matches_oracle_5d(
        rows in dataset(5, 40),
        w in proptest::collection::vec(0.05f64..1.0, 5),
        all_ops in ops(5),
        k in 1usize..4,
    ) {
        check_sharded_equivalence(&rows, w, &all_ops, k);
    }
}
