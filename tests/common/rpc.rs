//! Shared harness pieces for the distributed-tier suites
//! (`rpc_differential`, `rpc_faults`): endpoint factories with fault
//! injection and the matched coordinator/in-process configurations.

use gir::core::{Method, ShardRequest, ShardResponse};
use gir::prelude::*;
use gir::rpc::{
    DistributedServerConfig, EndpointFactory, FaultPlan, FaultyEndpoint, RemoteConfig, RpcError,
    ShardEndpoint, ThreadEndpoint,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Thread workers behind the loopback transport, wrapped with fault
/// injection. An empty plan is the no-fault distributed baseline.
pub fn faulty_factory(plan: Arc<FaultPlan>) -> EndpointFactory {
    Box::new(move |shard| {
        Box::new(FaultyEndpoint::new(
            Box::new(ThreadEndpoint::spawn()),
            shard,
            plan.clone(),
        ))
    })
}

/// Like [`faulty_factory`], but the plan applies only to the *first*
/// endpoint instance of each shard: a worker restarted by the rejoin
/// protocol comes back healthy (the CrashClock model — the fault
/// happened, recovery recovered). Without this, the rejoined endpoint's
/// fault clock would restart at zero and re-fire the same plan forever.
pub fn one_shot_faulty_factory(plan: Arc<FaultPlan>) -> EndpointFactory {
    let spawned: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
    Box::new(move |shard| {
        let first = spawned.lock().unwrap().insert(shard);
        let plan = if first {
            plan.clone()
        } else {
            FaultPlan::none()
        };
        Box::new(FaultyEndpoint::new(
            Box::new(ThreadEndpoint::spawn()),
            shard,
            plan,
        ))
    })
}

/// Kills the worker the moment an `Apply` arrives, while `kills` holds
/// charges — the coordinator sees `Closed` mid-broadcast with the
/// shard's apply state unknown. `FaultyEndpoint` deliberately exempts
/// `Apply` traffic (rejoin replays must stay reliable under the query
/// fault plans), so the apply-path contract needs its own injector.
struct ApplyKillEndpoint {
    inner: Option<Box<dyn ShardEndpoint>>,
    kills: Arc<AtomicU32>,
}

impl ShardEndpoint for ApplyKillEndpoint {
    fn call(&mut self, req: &ShardRequest, timeout: Duration) -> Result<ShardResponse, RpcError> {
        let Some(inner) = self.inner.as_mut() else {
            return Err(RpcError::Closed);
        };
        if matches!(req, ShardRequest::Apply { .. })
            && self
                .kills
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        {
            let mut dead = self.inner.take().expect("checked above");
            dead.shutdown();
            return Err(RpcError::Closed);
        }
        inner.call(req, timeout)
    }

    fn shutdown(&mut self) {
        if let Some(mut inner) = self.inner.take() {
            inner.shutdown();
        }
    }
}

/// Thread workers where shard `target`'s endpoints die on `Apply`
/// while `kills` holds charges. The charge pool is shared across
/// endpoint instances of the shard, so a replacement spawned by the
/// rejoin protocol can be made to fail too (one charge per kill);
/// start at zero and `store` charges right before the broadcast under
/// test.
pub fn apply_kill_factory(target: usize, kills: Arc<AtomicU32>) -> EndpointFactory {
    Box::new(move |shard| {
        let ep: Box<dyn ShardEndpoint> = Box::new(ThreadEndpoint::spawn());
        if shard == target {
            Box::new(ApplyKillEndpoint {
                inner: Some(ep),
                kills: kills.clone(),
            })
        } else {
            ep
        }
    })
}

/// Tight backoff so injected timeouts resolve fast; snapshots every
/// two batches so rejoins exercise both the snapshot and the WAL
/// suffix.
pub fn remote_cfg() -> RemoteConfig {
    RemoteConfig {
        timeout: Duration::from_secs(10),
        retries: 1,
        backoff: Duration::from_millis(1),
        snapshot_every: 2,
    }
}

/// The distributed server, configured head-to-head comparable with
/// [`inproc_cfg`]: same cache geometry, same method, sequential batch
/// execution for deterministic probe order.
pub fn dist_cfg(s: usize, p: Placement) -> DistributedServerConfig {
    DistributedServerConfig {
        threads: 1,
        data_shards: s,
        placement: p,
        cache_shards: 4,
        cache_capacity: 16,
        method: Method::FacetPruning,
        remote: remote_cfg(),
    }
}

/// The in-process oracle twin of [`dist_cfg`].
pub fn inproc_cfg(s: usize, p: Placement) -> ShardedServerConfig {
    ShardedServerConfig {
        threads: 1,
        data_shards: s,
        placement: p,
        cache_shards: 4,
        cache_capacity: 16,
        method: Method::FacetPruning,
        force_path: None,
    }
}
