//! Shared helpers for the differential test suites. Each integration
//! test binary compiles this module independently (`mod common;`), so
//! helpers unused by one binary are expected.
#![allow(dead_code)]

pub mod oracle;
pub mod rpc;
