//! Oracle builders and comparison keys shared by the differential
//! harnesses (`proptest_shard`, `pool_differential`, `crash_recovery`,
//! `rpc_differential`, …).
//!
//! Every suite in the workspace proves some execution plan equivalent
//! to a simpler oracle — sharded vs single tree, parallel vs
//! sequential, recovered vs never-crashed, distributed vs in-process.
//! The builders and equality keys they share live here so the suites
//! can't drift apart on what "equivalent" means.

use gir::core::{GirOutput, RegionKind};
use gir::prelude::*;
use gir::serve::UpdateReport;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One generated dataset mutation: `op < 6` inserts `attrs`, otherwise
/// `sel` picks a live record to delete.
pub type Op = (u8, Vec<f64>, u64);

/// `(shard count, placement)` grid pinned by the acceptance criteria.
pub const SHARDINGS: [(usize, Placement); 4] = [
    (1, Placement::Hash),
    (2, Placement::Grid),
    (4, Placement::Hash),
    (8, Placement::Grid),
];

/// Advances the xorshift state and returns a uniform draw in `[0, 1)`.
pub fn xorshift_unit(s: &mut u64) -> f64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    (*s >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic uniform dataset: ids `0..n`, attrs in `[0, 1)^d`.
pub fn records(n: usize, d: usize, seed: u64) -> Vec<Record> {
    let mut s = seed | 1;
    (0..n)
        .map(|i| {
            Record::new(
                i as u64,
                (0..d).map(|_| xorshift_unit(&mut s)).collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// The single-tree oracle substrate: one bulk-loaded R\*-tree in memory.
pub fn build_tree(recs: &[Record]) -> RTree {
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    RTree::bulk_load(store, recs).unwrap()
}

/// Turns the op stream into concrete update batches as a pure function
/// of the initial records — an oracle can replay any prefix of these.
pub fn materialize(initial: &[Record], batches: &[Vec<Op>]) -> Vec<Vec<Update>> {
    let mut live = initial.to_vec();
    let mut next_id = 1_000_000u64;
    batches
        .iter()
        .map(|ops| {
            ops.iter()
                .map(|(op, attrs, sel)| {
                    if *op < 6 || live.len() < 24 {
                        let rec = Record::new(next_id, attrs.clone());
                        next_id += 1;
                        live.push(rec.clone());
                        Update::Insert(rec)
                    } else {
                        let idx = (*sel % live.len() as u64) as usize;
                        let victim = live.swap_remove(idx);
                        Update::Delete {
                            id: victim.id,
                            attrs: victim.attrs,
                        }
                    }
                })
                .collect()
        })
        .collect()
}

/// Probe requests: every weight vector under both region kinds.
pub fn probe_requests(probes: &[Vec<f64>], k: usize) -> Vec<TopKRequest> {
    probes
        .iter()
        .flat_map(|w| {
            [RegionKind::Gir, RegionKind::GirStar].map(|kind| {
                let mut req = TopKRequest::new(w.clone(), k);
                req.kind = kind;
                req
            })
        })
        .collect()
}

/// The reduced facet set as (non-result contributor ids, vertices).
/// `None` when vertex enumeration fails numerically — membership
/// probes still cover that case.
pub fn reduced_facets(region: &gir::core::GirRegion) -> Option<(BTreeSet<u64>, Vec<PointD>)> {
    let red = region.reduce().ok()?;
    let ids = red
        .facets
        .iter()
        .filter_map(|h| match h.provenance {
            gir::geometry::hyperplane::Provenance::NonResult { record_id } => Some(record_id),
            _ => None,
        })
        .collect();
    Some((ids, red.vertices))
}

/// Reduced-boundary non-result contributor ids alone.
pub fn reduced_contributors(region: &gir::core::GirRegion) -> Option<BTreeSet<u64>> {
    reduced_facets(region).map(|(ids, _)| ids)
}

/// The record multiset as a bit-exact comparable key: the wire and
/// recovery paths must not perturb a single f64 bit — facets would
/// move.
pub fn dataset_key(records: Vec<Record>) -> Vec<(u64, Vec<u64>)> {
    let mut key: Vec<(u64, Vec<u64>)> = records
        .into_iter()
        .map(|r| (r.id, r.attrs.coords().iter().map(|c| c.to_bits()).collect()))
        .collect();
    key.sort_unstable();
    key
}

/// Bitwise equality of two GIR outputs: ranked ids, score bit patterns,
/// the exact half-space sequence (normals, offsets, provenance, order),
/// and the Phase-2 work counters. Any completion-order or wire-format
/// leak between two execution plans shows up here.
pub fn assert_bit_identical(seq: &GirOutput, par: &GirOutput, label: &str) {
    assert_eq!(
        seq.result.ids(),
        par.result.ids(),
        "{label}: ranked ids diverged"
    );
    let bits = |out: &GirOutput| -> Vec<u64> {
        out.result.ranked.iter().map(|(_, s)| s.to_bits()).collect()
    };
    assert_eq!(bits(seq), bits(par), "{label}: score bits diverged");
    assert_eq!(
        seq.region.halfspaces.len(),
        par.region.halfspaces.len(),
        "{label}: half-space count diverged"
    );
    for (i, (a, b)) in seq
        .region
        .halfspaces
        .iter()
        .zip(&par.region.halfspaces)
        .enumerate()
    {
        assert_eq!(
            a.provenance, b.provenance,
            "{label}: provenance diverged at half-space {i}"
        );
        assert_eq!(
            a.offset.to_bits(),
            b.offset.to_bits(),
            "{label}: offset bits diverged at half-space {i}"
        );
        let na: Vec<u64> = a.normal.coords().iter().map(|c| c.to_bits()).collect();
        let nb: Vec<u64> = b.normal.coords().iter().map(|c| c.to_bits()).collect();
        assert_eq!(na, nb, "{label}: normal bits diverged at half-space {i}");
    }
    assert_eq!(
        (seq.stats.candidates, seq.stats.structure_size),
        (par.stats.candidates, par.stats.structure_size),
        "{label}: Phase-2 counters diverged"
    );
}

/// Every observable counter of an [`UpdateReport`] as one comparable
/// tuple.
pub fn report_key(r: &UpdateReport) -> (usize, usize, usize, usize, usize, usize, usize) {
    (
        r.inserted,
        r.deleted,
        r.missed_deletes,
        r.evicted,
        r.repaired,
        r.shrunk,
        r.untouched,
    )
}
