//! Metrics-under-churn: `GirServer::maintenance_snapshot` (the
//! epoch-stamped per-shard counter buffers of `gir_obs::ShardScopes`)
//! taken *concurrently* with `apply_updates` must be a consistent cut —
//! it never observes a shard mid-`DeltaBatch`.
//!
//! The torn-read detector is the `classified` slot: the serve layer
//! writes `classified = evicted + repaired + shrunk + untouched` inside
//! the same epoch bracket as the four parts, so any snapshot in which
//! the identity fails caught a shard half-way through a batch. On top
//! of that, per-shard epochs must be even and monotone under a
//! hammering reader, and the final totals must reconcile exactly with
//! the sum of every `UpdateReport` the writer collected.
//!
//! Shard counts S ∈ {1, 2, 4, 8} are all exercised per case
//! (`PROPTEST_CASES` scales the number of traffic seeds).

use gir::prelude::*;
use gir::serve::{mixed_workload, MaintenanceMode, UpdateReport, WorkloadConfig, APPLY_SLOTS};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const D: usize = 3;

fn slot(name: &str) -> usize {
    APPLY_SLOTS
        .iter()
        .position(|n| *n == name)
        .unwrap_or_else(|| panic!("slot {name} missing from APPLY_SLOTS"))
}

fn build_server(data: &[Record], shards: usize) -> GirServer {
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, data).expect("bulk load");
    GirServer::new(
        tree,
        ScoringFunction::linear(D),
        ServerConfig {
            threads: 2,
            shards,
            shard_capacity: 8,
            maintenance: MaintenanceMode::DeltaRepair,
            ..ServerConfig::default()
        },
    )
}

/// Runs one churn round on `shards` cache shards: a reader thread
/// hammers `maintenance_snapshot` while the main thread interleaves
/// query batches (admitting entries) with update batches (classifying
/// them), then reconciles the final counters against the reports.
fn churn_round(shards: usize, seed: u64) {
    let data = gir::datagen::synthetic(Distribution::Independent, 1_200, D, seed ^ 42);
    let server = Arc::new(build_server(&data, shards));
    let wl = WorkloadConfig {
        dim: D,
        anchors: 6,
        jitter: 0.015,
        batches: 4,
        queries_per_batch: 30,
        updates_per_batch: 12,
        insert_fraction: 0.5,
        insert_hot_fraction: 0.5,
        delete_hot_fraction: 0.5,
        k_choices: vec![5, 10],
        seed,
    };
    let traffic = mixed_workload(&wl, &data);

    let classified = slot("classified");
    let parts: Vec<usize> = ["evicted", "repaired", "shrunk", "untouched"]
        .iter()
        .map(|n| slot(n))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let parts = parts.clone();
        std::thread::spawn(move || {
            let mut reads = 0u64;
            let mut last_epochs = vec![0u64; shards];
            while !stop.load(Ordering::Relaxed) {
                let snap = server.maintenance_snapshot();
                assert_eq!(snap.shards.len(), shards);
                for (si, shard) in snap.shards.iter().enumerate() {
                    assert_eq!(shard.epoch % 2, 0, "shard {si}: odd epoch escaped");
                    assert!(
                        shard.epoch >= last_epochs[si],
                        "shard {si}: epoch went backwards"
                    );
                    last_epochs[si] = shard.epoch;
                    let sum: u64 = parts.iter().map(|&p| shard.values[p]).sum();
                    assert_eq!(
                        shard.values[classified], sum,
                        "shard {si}: torn batch — classified != evicted + \
                         repaired + shrunk + untouched in {snap:?}"
                    );
                }
                reads += 1;
            }
            reads
        })
    };

    let mut applied = UpdateReport::default();
    let mut batches_applied = 0u64;
    for batch in &traffic {
        // Queries first: admissions give the next delta batch live
        // entries to classify (evict / repair / shrink / keep).
        server.run_batch(&batch.queries);
        let report = server
            .apply_updates(&batch.updates)
            .expect("update batch applies");
        applied.evicted += report.evicted;
        applied.repaired += report.repaired;
        applied.shrunk += report.shrunk;
        applied.untouched += report.untouched;
        batches_applied += 1;
    }

    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().expect("reader invariants hold");
    assert!(reads > 0, "reader never got a snapshot in");

    // Quiescent reconciliation: every apply_updates call brackets every
    // shard exactly once, and the slot totals must equal the sums the
    // writer saw in its reports — nothing lost, nothing double-counted.
    let snap = server.maintenance_snapshot();
    for (si, shard) in snap.shards.iter().enumerate() {
        assert_eq!(
            shard.batches(),
            batches_applied,
            "shard {si}: batch count drifted"
        );
    }
    let expect = |name: &str, v: usize| {
        assert_eq!(
            snap.total(name),
            Some(v as u64),
            "total {name} does not reconcile with the update reports: {snap:?}"
        );
    };
    expect("evicted", applied.evicted);
    expect("repaired", applied.repaired);
    expect("shrunk", applied.shrunk);
    expect("untouched", applied.untouched);
    expect(
        "classified",
        applied.evicted + applied.repaired + applied.shrunk + applied.untouched,
    );
}

proptest! {
    // Each case spawns threads and replays real traffic; keep the
    // default case count small (PROPTEST_CASES=N scales it up in CI).
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn maintenance_snapshots_are_consistent_under_churn(seed in 0u64..1_000) {
        for shards in [1usize, 2, 4, 8] {
            churn_round(shards, seed);
        }
    }
}
