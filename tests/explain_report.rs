//! End-to-end EXPLAIN coverage (`TopKRequest::explain`): for every
//! miss path — **cold** (no prune index), **indexed-recompute** (shared
//! Phase-2 system empty), **indexed-reuse** (entry evicted from the
//! cache but its Phase-2 system still warm), and **sharded** — and both
//! region kinds (GIR / GIR\*), the captured span tree must break the
//! request down into phases whose durations account for the end-to-end
//! latency within 10%, and the work counters (LP calls, BRS traversal,
//! pages) must be live where the path implies them.

use gir::obs::ExplainReport;
use gir::prelude::*;
use gir::serve::{RegionKind, TopKResponse};
use std::sync::Arc;

const D: usize = 3;
const K: usize = 10;

fn dataset(n: usize) -> Vec<Record> {
    gir::datagen::synthetic(Distribution::Independent, n, D, 0x5EED)
}

fn server(data: &[Record], use_prune_index: bool, shard_capacity: usize) -> GirServer {
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, data).expect("bulk load");
    GirServer::new(
        tree,
        ScoringFunction::linear(D),
        ServerConfig {
            threads: 1,
            shards: 1,
            shard_capacity,
            use_prune_index,
            ..ServerConfig::default()
        },
    )
}

fn request(kind: RegionKind, w: &[f64]) -> TopKRequest {
    TopKRequest::new(w.to_vec(), K).kind(kind).explain()
}

const KINDS: [RegionKind; 2] = [RegionKind::Gir, RegionKind::GirStar];

/// The acceptance check: a miss response must carry a report whose
/// top-level phases (`cache_lookup` → `compute` → `admit`) cover the
/// measured end-to-end latency within 10% — the gap is only span
/// bookkeeping and response assembly, never untraced work.
fn assert_phases_cover_latency(resp: &TopKResponse, path: &str) -> ExplainReport {
    assert!(!resp.from_cache, "{path}: expected a miss");
    let report = resp
        .explain
        .as_ref()
        .unwrap_or_else(|| panic!("{path}: explain requested but absent"));
    assert_eq!(report.outcome, "miss", "{path}");
    assert_eq!(report.total_us, resp.latency_us, "{path}");
    let names: Vec<&str> = report.phases.iter().map(|(n, _)| *n).collect();
    assert!(names.contains(&"cache_lookup"), "{path}: phases {names:?}");
    assert!(names.contains(&"compute"), "{path}: phases {names:?}");
    let sum = report.phase_total_us();
    let diff = report.total_us.abs_diff(sum);
    // Phase durations truncate to whole µs, so three phases can
    // under-report by ~3µs before any real gap exists — a 4µs floor
    // keeps the 10% bound meaningful for the fastest misses (shared
    // Phase-2 reuse finishes in ~15µs) without loosening it elsewhere.
    let allowed = (report.total_us / 10).max(4);
    assert!(
        diff <= allowed,
        "{path}: phase sum {sum}µs vs end-to-end {}µs (off by {diff}µs > 10%)\n{}",
        report.total_us,
        report.to_text(),
    );
    report.clone()
}

#[test]
fn explain_covers_cold_miss_path() {
    let data = dataset(6_000);
    for kind in KINDS {
        let server = server(&data, false, 32);
        let out = server.run_batch(&[request(kind, &[0.55, 0.62, 0.48])]);
        let report = assert_phases_cover_latency(&out.responses[0], kind.label());
        // The cold path sweeps the real R*-tree twice (BRS top-k +
        // Phase 2), so page reads must show; ranked-GIR Phase 2 also
        // funnels through the LP (the star region is LP-free).
        assert!(report.pages > 0, "{}: no page reads traced", kind.label());
        if kind == RegionKind::Gir {
            assert!(report.lp_calls > 0, "no LP calls traced");
        }
        assert_eq!(out.responses[0].pages, report.pages, "{}", kind.label());
    }
}

#[test]
fn explain_covers_indexed_recompute_and_reuse_paths() {
    let data = dataset(6_000);
    let w = [0.55, 0.62, 0.48];
    for kind in KINDS {
        // shard_capacity 1: the decoy below evicts the first entry, so
        // re-asking the same weights is a genuine cache miss that finds
        // the shared Phase-2 system warm (same result set ⇒ reuse).
        let server = server(&data, true, 1);

        let out = server.run_batch(&[request(kind, &w)]);
        let recompute =
            assert_phases_cover_latency(&out.responses[0], &format!("{}/recompute", kind.label()));
        // The mirror BRS sweep reports its traversal through
        // `brs_visit` events — the paper's node-access cost metric.
        assert!(
            recompute.brs_nodes > 0 && recompute.brs_leaves > 0,
            "{}: mirror traversal not traced",
            kind.label()
        );

        let out = server.run_batch(&[request(kind, &[0.2, 0.3, 0.9])]);
        assert!(!out.responses[0].from_cache, "decoy should miss");

        let before = server.prune_stats().phase2_hits;
        let out = server.run_batch(&[request(kind, &w)]);
        assert_phases_cover_latency(&out.responses[0], &format!("{}/reuse", kind.label()));
        assert!(
            server.prune_stats().phase2_hits > before,
            "{}: repeat miss did not reuse the shared Phase-2 system",
            kind.label()
        );
    }
}

#[test]
fn explain_covers_sharded_miss_path() {
    let data = dataset(6_000);
    for kind in KINDS {
        let server = ShardedGirServer::build(
            D,
            &data,
            ScoringFunction::linear(D),
            ShardedServerConfig {
                threads: 1,
                data_shards: 4,
                placement: Placement::Hash,
                ..ShardedServerConfig::default()
            },
        )
        .expect("sharded build");
        let out = server.run_batch(&[request(kind, &[0.55, 0.62, 0.48])]);
        let report = assert_phases_cover_latency(&out.responses[0], kind.label());
        // The sharded plan stamps every per-shard span with its shard
        // id; the report's attribution must cover all 4 data shards.
        let mut shards: Vec<u64> = report.per_shard_us.iter().map(|(s, _)| *s).collect();
        shards.sort_unstable();
        assert_eq!(shards, vec![0, 1, 2, 3], "{}", kind.label());
    }
}

#[test]
fn hits_and_unrequested_responses_carry_no_report() {
    let data = dataset(2_000);
    let server = server(&data, true, 32);
    let plain = TopKRequest::new(vec![0.5, 0.5, 0.5], K);
    let out = server.run_batch(std::slice::from_ref(&plain));
    assert!(out.responses[0].explain.is_none(), "explain not requested");

    let out = server.run_batch(&[plain.explain()]);
    let resp = &out.responses[0];
    assert!(resp.from_cache, "repeat of the same weights must hit");
    let report = resp.explain.as_ref().expect("hit still explains");
    assert_eq!(report.outcome, "hit");
    // A hit never touches the tree: no pages, no LP, just the lookup.
    assert_eq!(report.pages, 0);
    assert_eq!(report.lp_calls, 0);
    assert!(report
        .phases
        .iter()
        .any(|(name, _)| *name == "cache_lookup"));
}
