//! Live-update integration: R*-tree insert/delete + GIR cache
//! maintenance, verified against recomputation at every step.

use gir::core::{CacheKey, GirCache, Method};
use gir::prelude::*;
use gir::query::{naive_topk, ScoringFunction};
use gir::rtree::Record;
use std::sync::Arc;

fn build(n: usize, d: usize, seed: u64) -> (Vec<Record>, RTree) {
    let data = gir::datagen::synthetic(Distribution::Independent, n, d, seed);
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    (data, tree)
}

#[test]
fn topk_stays_correct_through_insert_delete_churn() {
    let d = 3;
    let (mut data, mut tree) = build(2000, d, 0x0DD);
    let f = ScoringFunction::linear(d);
    let w = gir_geometry::vector::PointD::new(vec![0.6, 0.5, 0.7]);
    let extra = gir::datagen::synthetic(Distribution::Independent, 200, d, 0x0DE);

    for (i, rec) in extra.iter().enumerate() {
        let mut rec = rec.clone();
        rec.id += 1_000_000; // keep ids unique
        tree.insert(rec.clone()).unwrap();
        data.push(rec);
        if i % 2 == 0 {
            let victim = data.remove(i * 7 % data.len());
            assert!(tree.delete(victim.id, &victim.attrs).unwrap());
        }
        if i % 25 == 0 {
            let engine = GirEngine::new(&tree);
            let res = engine
                .topk(&QueryVector::new(w.coords().to_vec()), 10)
                .unwrap();
            assert_eq!(res.ids(), naive_topk(&data, &f, &w, 10).ids(), "step {i}");
        }
    }
}

#[test]
fn cache_maintenance_never_serves_stale_results() {
    let d = 3;
    let (mut data, mut tree) = build(5000, d, 0xCAFE);
    let scoring = ScoringFunction::linear(d);
    let k = 8;

    // Warm the cache with a few queries.
    let anchors = gir::datagen::random_queries(5, d, 0.2, 0xA);
    let mut cache = GirCache::new(8);
    {
        let engine = GirEngine::new(&tree);
        for w in &anchors {
            let q = QueryVector::new(w.coords().to_vec());
            let out = engine.gir(&q, k, Method::FacetPruning).unwrap();
            cache.admit(&CacheKey::new(w, k, &scoring), out.region, out.result);
        }
    }

    // Stream updates; after each, probe cached lookups against truth.
    let newcomers = gir::datagen::synthetic(Distribution::Independent, 60, d, 0xB);
    for (i, rec) in newcomers.iter().enumerate() {
        let mut rec = rec.clone();
        rec.id += 2_000_000;
        // Bias some newcomers to be strong (top-corner-ish) so cache
        // invalidation actually fires.
        if i % 5 == 0 {
            for c in rec.attrs.coords_mut() {
                *c = (*c + 1.8) / 3.0; // pull toward ~0.6..0.93
            }
        }
        tree.insert(rec.clone()).unwrap();
        data.push(rec.clone());
        cache.on_insert(&rec);

        if i % 3 == 2 {
            let victim = data.remove((i * 13) % data.len());
            assert!(tree.delete(victim.id, &victim.attrs).unwrap());
            cache.on_delete(victim.id);
        }

        for w in &anchors {
            if let Some(records) = cache.get(&CacheKey::new(w, k, &scoring)) {
                let truth = naive_topk(&data, &scoring, w, k);
                assert_eq!(
                    records.iter().map(|r| r.id).collect::<Vec<_>>(),
                    truth.ids(),
                    "stale cache hit after update {i}"
                );
            }
        }
    }
}

#[test]
fn shrunk_regions_remain_subsets() {
    use gir::core::maintenance::{apply_insertion, UpdateImpact};
    let d = 2;
    let (_, tree) = build(3000, d, 0x51);
    let engine = GirEngine::new(&tree);
    let scoring = ScoringFunction::linear(d);
    let q = QueryVector::new(vec![0.6, 0.5]);
    let out = engine.gir(&q, 10, Method::FacetPruning).unwrap();
    let kth = out.result.kth().clone();
    let mut region = out.region.clone();

    // Insert a record that beats pk only for extreme w2-heavy weights.
    let strong = Record::new(7_000_000, vec![0.05, 0.999]);
    let impact = apply_insertion(&mut region, &kth, &strong, &scoring);
    if impact == UpdateImpact::Shrunk {
        // Shrunk region ⊆ original region.
        for w in gir::datagen::random_queries(200, d, 0.0, 0x5) {
            if region.contains(&w) {
                assert!(out.region.contains(&w), "shrink grew the region at {w:?}");
            }
        }
    }
}
