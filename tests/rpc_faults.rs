//! The fault-path contract of the distributed tier, pinned exactly:
//!
//! * a hung worker costs precisely its timeout + retry budget, fails
//!   only the response that needed it (reason: the shard and "timed
//!   out"), and every attempt is visible in the `rpc.*` counters —
//!   requests/responses/failures/timeouts/retries deltas match the
//!   injected fault plan arithmetic, not just "some errors happened";
//! * one transient delay is absorbed by the retry budget: the caller
//!   sees a clean response, the counters see one failure and one retry;
//! * a killed worker fails fast (`connection closed`, no retry — the
//!   stream is gone), and once the slot is reaped, further calls
//!   short-circuit with **zero** counter movement (a dead transport
//!   must not manufacture request traffic);
//! * rejoin is one `Load` RPC (+ WAL suffix) and one `rpc.rejoins`
//!   tick, after which the same query succeeds;
//! * through all of it the liveness invariant `metrics_check` enforces
//!   on CI snapshots holds: `requests = responses + failures` and
//!   `retries ≤ requests`.
//!
//! The `rpc.*` counters are process-global, so every test serializes
//! behind one lock and measures deltas against its own baseline.

mod common;

use common::oracle::{dataset_key, probe_requests, records, report_key};
use common::rpc::{apply_kill_factory, dist_cfg, inproc_cfg, one_shot_faulty_factory};
use gir::obs::rpc::RpcCounters;
use gir::prelude::*;
use gir::rpc::{DistributedGirServer, Fault, FaultAction, FaultPlan};
use gir::shard::ShardedGirServer;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

/// Serializes the tests of this binary: they share the process-global
/// `rpc.*` counters and assert exact deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Snap {
    requests: u64,
    responses: u64,
    failures: u64,
    retries: u64,
    timeouts: u64,
    rejoins: u64,
}

fn snap(c: &RpcCounters) -> Snap {
    Snap {
        requests: c.requests.get(),
        responses: c.responses.get(),
        failures: c.failures.get(),
        retries: c.retries.get(),
        timeouts: c.timeouts.get(),
        rejoins: c.rejoins.get(),
    }
}

/// `(requests, responses, failures, retries, timeouts, rejoins)` since
/// `base`.
fn delta(base: Snap, now: Snap) -> (u64, u64, u64, u64, u64, u64) {
    (
        now.requests - base.requests,
        now.responses - base.responses,
        now.failures - base.failures,
        now.retries - base.retries,
        now.timeouts - base.timeouts,
        now.rejoins - base.rejoins,
    )
}

fn assert_live(c: &RpcCounters) {
    let s = snap(c);
    assert_eq!(
        s.requests,
        s.responses + s.failures,
        "liveness: every attempt must resolve"
    );
    assert!(s.retries <= s.requests, "liveness: retries exceed requests");
}

fn plan(faults: Vec<Fault>) -> Arc<FaultPlan> {
    Arc::new(FaultPlan { faults })
}

fn launch(s: usize, seed: u64, p: Arc<FaultPlan>) -> (Vec<Record>, DistributedGirServer) {
    let d = 3;
    let data = records(90, d, seed);
    let dist = DistributedGirServer::launch(
        &data,
        ScoringFunction::linear(d),
        dist_cfg(s, Placement::Hash),
        one_shot_faulty_factory(p),
    )
    .unwrap();
    (data, dist)
}

/// Delay on both the first query call and its retry: the worker is
/// hung past the whole retry budget. Exactly one response degrades,
/// with the shard and the timeout in its reason, and the counter
/// deltas are the fault-plan arithmetic: the miss aborts at shard 1's
/// top-k, so shard 0 contributed one answered request and shard 1 two
/// timed-out attempts bridged by one retry.
#[test]
fn hung_worker_times_out_with_reason_and_exact_counters() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let (_, dist) = launch(
        2,
        0xFA01,
        plan(
            (0..2)
                .map(|i| Fault {
                    shard: 1,
                    call: i,
                    action: FaultAction::Delay,
                })
                .collect(),
        ),
    );
    let req = probe_requests(&[vec![0.55, 0.62, 0.48]], 5);
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    let r = &out.responses[0];
    assert!(r.failed, "hung worker must degrade the response");
    let reason = r.error.as_deref().expect("failed response carries reason");
    assert!(
        reason.contains("shard 1") && reason.contains("timed out"),
        "reason must name the shard and the timeout: {reason}"
    );
    assert_eq!(
        delta(base, snap(&c)),
        // requests, responses, failures, retries, timeouts, rejoins
        (3, 1, 2, 1, 2, 0),
        "counters must match the injected plan exactly"
    );
    assert_eq!(dist.dead_shards(), vec![1], "post-retry timeout reaps");

    // Rejoin: one Load RPC (the WAL suffix is empty — no batches were
    // applied) and one rejoin tick; the same query then succeeds with
    // a full fan-out (2 shards × TopK + Phase2).
    let base = snap(&c);
    assert_eq!(dist.rejoin_dead().unwrap(), 1);
    assert_eq!(delta(base, snap(&c)), (1, 1, 0, 0, 0, 1));
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    assert!(!out.responses[0].failed, "rejoined worker must answer");
    assert!(!out.responses[0].ids.is_empty());
    assert_eq!(delta(base, snap(&c)), (4, 4, 0, 0, 0, 0));
    assert_live(&c);
    dist.shutdown();
}

/// One transient delay sits inside the retry budget: the caller never
/// sees it, the counters see exactly one failure and its retry.
#[test]
fn single_delay_is_absorbed_by_retry() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let fplan = plan(vec![Fault {
        shard: 0,
        call: 0,
        action: FaultAction::Delay,
    }]);
    let (data, dist) = launch(2, 0xFA02, fplan);
    let oracle = ShardedGirServer::build(
        3,
        &data,
        ScoringFunction::linear(3),
        inproc_cfg(2, Placement::Hash),
    )
    .unwrap();
    let req = probe_requests(&[vec![0.9, 0.15, 0.4]], 4);
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    let want = oracle.run_batch(&req[..1]);
    assert!(!out.responses[0].failed, "retry must absorb one delay");
    assert_eq!(
        out.responses[0].ids, want.responses[0].ids,
        "retried answer must match the in-process oracle"
    );
    // Full miss fan-out (2 × TopK + 2 × Phase2 answered) plus the one
    // timed-out first attempt on shard 0.
    assert_eq!(delta(base, snap(&c)), (5, 4, 1, 1, 1, 0));
    assert!(
        dist.dead_shards().is_empty(),
        "no reap on an absorbed delay"
    );
    assert_live(&c);
    dist.shutdown();
}

/// A kill fails fast (closed streams are not retried), and once the
/// slot is reaped further calls short-circuit without touching the
/// counters — a dead transport generates no phantom traffic.
#[test]
fn dead_slot_short_circuits_without_counter_movement() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let fplan = plan(vec![Fault {
        shard: 1,
        call: 0,
        action: FaultAction::Kill,
    }]);
    let (_, dist) = launch(2, 0xFA03, fplan);
    let req = probe_requests(&[vec![0.33, 0.71, 0.52]], 5);

    // The kill: shard 0 answers its TopK, shard 1's dies mid-call. No
    // retry (the stream is gone), so one failure and zero timeouts.
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    assert!(out.responses[0].failed);
    let reason = out.responses[0].error.as_deref().unwrap_or_default();
    assert!(
        reason.contains("shard 1") && reason.contains("connection closed"),
        "kill reason must be the closed transport: {reason}"
    );
    assert_eq!(delta(base, snap(&c)), (2, 1, 1, 0, 0, 0));
    assert_eq!(dist.dead_shards(), vec![1]);

    // Same query again: nothing was admitted (the miss failed), so the
    // fan-out re-runs — shard 0 is one counted request, the dead slot
    // fails the response with zero counter movement.
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    assert!(out.responses[0].failed);
    assert_eq!(
        delta(base, snap(&c)),
        (1, 1, 0, 0, 0, 0),
        "a dead slot must not manufacture request traffic"
    );

    assert_eq!(dist.rejoin_dead().unwrap(), 1);
    let out = dist.run_batch(&req[..1]);
    assert!(!out.responses[0].failed, "rejoined worker must answer");
    assert_live(&c);
    dist.shutdown();
}

/// Builds matched distributed/oracle servers where shard 1's worker
/// dies on `Apply` while `kills` holds charges, plus three update
/// batches that churn every shard.
fn apply_fault_fixture(
    seed: u64,
    kills: &Arc<AtomicU32>,
) -> (
    Vec<Record>,
    DistributedGirServer,
    ShardedGirServer,
    Vec<Vec<Update>>,
) {
    let d = 3;
    let s = 4;
    let data = records(120, d, seed);
    let dist = DistributedGirServer::launch(
        &data,
        ScoringFunction::linear(d),
        dist_cfg(s, Placement::Hash),
        apply_kill_factory(1, kills.clone()),
    )
    .unwrap();
    let oracle = ShardedGirServer::build(
        d,
        &data,
        ScoringFunction::linear(d),
        inproc_cfg(s, Placement::Hash),
    )
    .unwrap();
    // Three batches: inserts spread across shards plus a delete each,
    // derived purely from `data` so both sides see identical streams.
    let mut next_id = 7_000_000u64;
    let batches = (0..3)
        .map(|b| {
            let mut batch: Vec<Update> = (0..6)
                .map(|i| {
                    let src = &data[(b * 17 + i * 5) % data.len()];
                    let attrs: Vec<f64> =
                        src.attrs.coords().iter().map(|x| (x * 0.83) + 0.05).collect();
                    let rec = Record::new(next_id, attrs);
                    next_id += 1;
                    Update::Insert(rec)
                })
                .collect();
            let victim = &data[(b * 31 + 7) % data.len()];
            batch.push(Update::Delete {
                id: victim.id,
                attrs: victim.attrs.clone(),
            });
            batch
        })
        .collect();
    (data, dist, oracle, batches)
}

/// The silent-divergence regression: a worker lost *mid-broadcast*
/// must not abort the broadcast — the shards after it still receive
/// the batch, and the reaped shard rejoins inline (the WAL already
/// holds the batch), recovering even its owner outcomes. Everything
/// downstream — report, record multiset, fresh queries — stays
/// bit-identical to the in-process oracle.
#[test]
fn apply_failure_mid_broadcast_rejoins_inline_without_divergence() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let kills = Arc::new(AtomicU32::new(0));
    let (_, dist, oracle, batches) = apply_fault_fixture(0xAF01, &kills);

    let r_d = dist.apply_updates(&batches[0]).unwrap();
    let r_o = oracle.apply_updates(&batches[0]).unwrap();
    assert_eq!(report_key(&r_d), report_key(&r_o), "clean batch diverged");

    // Shard 1 dies on its Apply of batch 2; the rejoin's replacement
    // endpoint draws no charge and comes back healthy.
    kills.store(1, Ordering::SeqCst);
    let base = snap(&c);
    let r_d = dist.apply_updates(&batches[1]).unwrap();
    let r_o = oracle.apply_updates(&batches[1]).unwrap();
    assert_eq!(
        report_key(&r_d),
        report_key(&r_o),
        "inline rejoin must recover the dead shard's owner outcomes"
    );
    assert!(
        dist.dead_shards().is_empty(),
        "the killed shard must rejoin within the apply"
    );
    assert_eq!(
        snap(&c).rejoins - base.rejoins,
        1,
        "exactly one inline rejoin"
    );

    // Fresh misses agree with the oracle — proof that the shards
    // *after* the failing one still received the batch.
    let fresh = probe_requests(&[vec![0.2, 0.5, 0.8], vec![0.7, 0.6, 0.1]], 5);
    let got = dist.run_batch(&fresh);
    let want = oracle.run_batch(&fresh);
    for (i, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
        assert!(!g.failed, "probe {i} failed");
        assert_eq!(g.ids, w.ids, "probe {i} ids diverged after the fault");
    }
    assert_eq!(
        dataset_key(dist.records_snapshot().unwrap()),
        dataset_key(oracle.records_snapshot().unwrap()),
        "record multiset diverged"
    );
    assert_live(&c);
    dist.shutdown();
}

/// The worst case: the inline rejoin fails too (the replacement worker
/// also dies on its replay `Apply`). The shard stays dead — visibly,
/// not silently — the broadcast still reaches every later shard, the
/// snapshot roll is skipped (a cut needs all workers), and the next
/// update batch rejoins the shard up front, converging both sides
/// bit-identically.
#[test]
fn apply_failure_with_failed_rejoin_leaves_shard_dead_then_converges() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let kills = Arc::new(AtomicU32::new(0));
    let (_, dist, oracle, batches) = apply_fault_fixture(0xAF02, &kills);

    dist.apply_updates(&batches[0]).unwrap();
    oracle.apply_updates(&batches[0]).unwrap();

    // Charge 1 kills the live worker mid-broadcast; charge 2 kills the
    // rejoin replacement on its first replay Apply. Batch 2 is epoch 2
    // (snapshot cadence boundary): the roll must be skipped, not fail.
    kills.store(2, Ordering::SeqCst);
    dist.apply_updates(&batches[1]).unwrap();
    oracle.apply_updates(&batches[1]).unwrap();
    assert_eq!(
        dist.dead_shards(),
        vec![1],
        "a failed rejoin must leave the shard visibly dead"
    );

    // The next batch rejoins up front (no charges left) and replays the
    // full WAL suffix — nothing was skipped anywhere.
    let r_d = dist.apply_updates(&batches[2]).unwrap();
    let r_o = oracle.apply_updates(&batches[2]).unwrap();
    assert_eq!(
        (r_d.inserted, r_d.deleted, r_d.missed_deletes),
        (r_o.inserted, r_o.deleted, r_o.missed_deletes),
        "post-recovery owner outcomes diverged"
    );
    assert!(dist.dead_shards().is_empty(), "up-front rejoin failed");

    let fresh = probe_requests(&[vec![0.15, 0.45, 0.85], vec![0.65, 0.7, 0.2]], 4);
    let got = dist.run_batch(&fresh);
    let want = oracle.run_batch(&fresh);
    for (i, (g, w)) in got.responses.iter().zip(&want.responses).enumerate() {
        assert!(!g.failed, "probe {i} failed");
        assert_eq!(g.ids, w.ids, "probe {i} ids diverged after recovery");
    }
    assert_eq!(
        dataset_key(dist.records_snapshot().unwrap()),
        dataset_key(oracle.records_snapshot().unwrap()),
        "record multiset diverged after recovery"
    );
    assert_live(&c);
    dist.shutdown();
}
