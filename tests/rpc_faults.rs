//! The fault-path contract of the distributed tier, pinned exactly:
//!
//! * a hung worker costs precisely its timeout + retry budget, fails
//!   only the response that needed it (reason: the shard and "timed
//!   out"), and every attempt is visible in the `rpc.*` counters —
//!   requests/responses/failures/timeouts/retries deltas match the
//!   injected fault plan arithmetic, not just "some errors happened";
//! * one transient delay is absorbed by the retry budget: the caller
//!   sees a clean response, the counters see one failure and one retry;
//! * a killed worker fails fast (`connection closed`, no retry — the
//!   stream is gone), and once the slot is reaped, further calls
//!   short-circuit with **zero** counter movement (a dead transport
//!   must not manufacture request traffic);
//! * rejoin is one `Load` RPC (+ WAL suffix) and one `rpc.rejoins`
//!   tick, after which the same query succeeds;
//! * through all of it the liveness invariant `metrics_check` enforces
//!   on CI snapshots holds: `requests = responses + failures` and
//!   `retries ≤ requests`.
//!
//! The `rpc.*` counters are process-global, so every test serializes
//! behind one lock and measures deltas against its own baseline.

mod common;

use common::oracle::{probe_requests, records};
use common::rpc::{dist_cfg, inproc_cfg, one_shot_faulty_factory};
use gir::obs::rpc::RpcCounters;
use gir::prelude::*;
use gir::rpc::{DistributedGirServer, Fault, FaultAction, FaultPlan};
use gir::shard::ShardedGirServer;
use std::sync::{Arc, Mutex};

/// Serializes the tests of this binary: they share the process-global
/// `rpc.*` counters and assert exact deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Snap {
    requests: u64,
    responses: u64,
    failures: u64,
    retries: u64,
    timeouts: u64,
    rejoins: u64,
}

fn snap(c: &RpcCounters) -> Snap {
    Snap {
        requests: c.requests.get(),
        responses: c.responses.get(),
        failures: c.failures.get(),
        retries: c.retries.get(),
        timeouts: c.timeouts.get(),
        rejoins: c.rejoins.get(),
    }
}

/// `(requests, responses, failures, retries, timeouts, rejoins)` since
/// `base`.
fn delta(base: Snap, now: Snap) -> (u64, u64, u64, u64, u64, u64) {
    (
        now.requests - base.requests,
        now.responses - base.responses,
        now.failures - base.failures,
        now.retries - base.retries,
        now.timeouts - base.timeouts,
        now.rejoins - base.rejoins,
    )
}

fn assert_live(c: &RpcCounters) {
    let s = snap(c);
    assert_eq!(
        s.requests,
        s.responses + s.failures,
        "liveness: every attempt must resolve"
    );
    assert!(s.retries <= s.requests, "liveness: retries exceed requests");
}

fn plan(faults: Vec<Fault>) -> Arc<FaultPlan> {
    Arc::new(FaultPlan { faults })
}

fn launch(s: usize, seed: u64, p: Arc<FaultPlan>) -> (Vec<Record>, DistributedGirServer) {
    let d = 3;
    let data = records(90, d, seed);
    let dist = DistributedGirServer::launch(
        &data,
        ScoringFunction::linear(d),
        dist_cfg(s, Placement::Hash),
        one_shot_faulty_factory(p),
    )
    .unwrap();
    (data, dist)
}

/// Delay on both the first query call and its retry: the worker is
/// hung past the whole retry budget. Exactly one response degrades,
/// with the shard and the timeout in its reason, and the counter
/// deltas are the fault-plan arithmetic: the miss aborts at shard 1's
/// top-k, so shard 0 contributed one answered request and shard 1 two
/// timed-out attempts bridged by one retry.
#[test]
fn hung_worker_times_out_with_reason_and_exact_counters() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let (_, dist) = launch(
        2,
        0xFA01,
        plan(
            (0..2)
                .map(|i| Fault {
                    shard: 1,
                    call: i,
                    action: FaultAction::Delay,
                })
                .collect(),
        ),
    );
    let req = probe_requests(&[vec![0.55, 0.62, 0.48]], 5);
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    let r = &out.responses[0];
    assert!(r.failed, "hung worker must degrade the response");
    let reason = r.error.as_deref().expect("failed response carries reason");
    assert!(
        reason.contains("shard 1") && reason.contains("timed out"),
        "reason must name the shard and the timeout: {reason}"
    );
    assert_eq!(
        delta(base, snap(&c)),
        // requests, responses, failures, retries, timeouts, rejoins
        (3, 1, 2, 1, 2, 0),
        "counters must match the injected plan exactly"
    );
    assert_eq!(dist.dead_shards(), vec![1], "post-retry timeout reaps");

    // Rejoin: one Load RPC (the WAL suffix is empty — no batches were
    // applied) and one rejoin tick; the same query then succeeds with
    // a full fan-out (2 shards × TopK + Phase2).
    let base = snap(&c);
    assert_eq!(dist.rejoin_dead().unwrap(), 1);
    assert_eq!(delta(base, snap(&c)), (1, 1, 0, 0, 0, 1));
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    assert!(!out.responses[0].failed, "rejoined worker must answer");
    assert!(!out.responses[0].ids.is_empty());
    assert_eq!(delta(base, snap(&c)), (4, 4, 0, 0, 0, 0));
    assert_live(&c);
    dist.shutdown();
}

/// One transient delay sits inside the retry budget: the caller never
/// sees it, the counters see exactly one failure and its retry.
#[test]
fn single_delay_is_absorbed_by_retry() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let fplan = plan(vec![Fault {
        shard: 0,
        call: 0,
        action: FaultAction::Delay,
    }]);
    let (data, dist) = launch(2, 0xFA02, fplan);
    let oracle = ShardedGirServer::build(
        3,
        &data,
        ScoringFunction::linear(3),
        inproc_cfg(2, Placement::Hash),
    )
    .unwrap();
    let req = probe_requests(&[vec![0.9, 0.15, 0.4]], 4);
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    let want = oracle.run_batch(&req[..1]);
    assert!(!out.responses[0].failed, "retry must absorb one delay");
    assert_eq!(
        out.responses[0].ids, want.responses[0].ids,
        "retried answer must match the in-process oracle"
    );
    // Full miss fan-out (2 × TopK + 2 × Phase2 answered) plus the one
    // timed-out first attempt on shard 0.
    assert_eq!(delta(base, snap(&c)), (5, 4, 1, 1, 1, 0));
    assert!(
        dist.dead_shards().is_empty(),
        "no reap on an absorbed delay"
    );
    assert_live(&c);
    dist.shutdown();
}

/// A kill fails fast (closed streams are not retried), and once the
/// slot is reaped further calls short-circuit without touching the
/// counters — a dead transport generates no phantom traffic.
#[test]
fn dead_slot_short_circuits_without_counter_movement() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = RpcCounters::global();
    let fplan = plan(vec![Fault {
        shard: 1,
        call: 0,
        action: FaultAction::Kill,
    }]);
    let (_, dist) = launch(2, 0xFA03, fplan);
    let req = probe_requests(&[vec![0.33, 0.71, 0.52]], 5);

    // The kill: shard 0 answers its TopK, shard 1's dies mid-call. No
    // retry (the stream is gone), so one failure and zero timeouts.
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    assert!(out.responses[0].failed);
    let reason = out.responses[0].error.as_deref().unwrap_or_default();
    assert!(
        reason.contains("shard 1") && reason.contains("connection closed"),
        "kill reason must be the closed transport: {reason}"
    );
    assert_eq!(delta(base, snap(&c)), (2, 1, 1, 0, 0, 0));
    assert_eq!(dist.dead_shards(), vec![1]);

    // Same query again: nothing was admitted (the miss failed), so the
    // fan-out re-runs — shard 0 is one counted request, the dead slot
    // fails the response with zero counter movement.
    let base = snap(&c);
    let out = dist.run_batch(&req[..1]);
    assert!(out.responses[0].failed);
    assert_eq!(
        delta(base, snap(&c)),
        (1, 1, 0, 0, 0, 0),
        "a dead slot must not manufacture request traffic"
    );

    assert_eq!(dist.rejoin_dead().unwrap(), 1);
    let out = dist.run_batch(&req[..1]);
    assert!(!out.responses[0].failed, "rejoined worker must answer");
    assert_live(&c);
    dist.shutdown();
}
