//! The GIR\* sharding differential harness: the order-insensitive
//! region computed over a partitioned dataset
//! (`gir::shard::ShardedDataset::gir_star` — per-shard star systems
//! against the globally merged per-rank pivots, intersected into one
//! region) must be **equivalent to the single-tree oracle**
//! (`GirEngine::gir_star`):
//!
//! * same top-k (the merge phase is shared with the order-sensitive
//!   path, so composition *and* order agree),
//! * same region as a point set (sampled membership, boundary-epsilon
//!   disagreements tolerated), additionally checked against the
//!   brute-force GIR\* law oracle (`naive_gir_star_contains`:
//!   membership ⇔ every result record out-scores every non-result
//!   record),
//! * same reduced facet set (non-redundant `StarNonResult` boundary,
//!   compared by contributing record id; one-sided facets must graze
//!   the other polytope's boundary — an exact tie the two reductions
//!   broke differently),
//!
//! for S ∈ {1, 2, 4, 8}, both placement policies, every star Phase-2
//! method (SP / CP / FP), d ∈ {2..5}, and — crucially — **after every
//! chunk of a random update interleaving** routed through the sharded
//! update path (owning shard only) and the oracle tree in lockstep,
//! which also drives the per-shard star Phase-2 system maintenance
//! (inserts append per-pivot conditions, deletes purge naming systems).

use gir::core::gir_star::naive_gir_star_contains;
use gir::core::{GirEngine, GirRegion, Method};
use gir::prelude::*;
use gir::shard::{Placement, ShardedDataset};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// One generated dataset mutation: `op < 6` inserts `attrs`, otherwise
/// `sel` picks a live record to delete.
type Op = (u8, Vec<f64>, u64);

const METHODS: [Method; 3] = [
    Method::SkylinePruning,
    Method::ConvexHullPruning,
    Method::FacetPruning,
];

/// `(shard count, placement)` grid pinned by the acceptance criteria.
const SHARDINGS: [(usize, Placement); 4] = [
    (1, Placement::Hash),
    (2, Placement::Grid),
    (4, Placement::Hash),
    (8, Placement::Grid),
];

fn build_tree(recs: &[Record]) -> RTree {
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    RTree::bulk_load(store, recs).unwrap()
}

fn dataset(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n..n + 15)
}

fn ops(d: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..10,
            proptest::collection::vec(0.0f64..1.0, d),
            0u64..1 << 40,
        ),
        6..14,
    )
}

/// The reduced facet set as (star contributor ids, vertices). `None`
/// when vertex enumeration fails numerically — the membership probes
/// still cover that case.
fn reduced_star_facets(region: &GirRegion) -> Option<(BTreeSet<u64>, Vec<PointD>)> {
    let red = region.reduce().ok()?;
    let ids = red
        .facets
        .iter()
        .filter_map(|h| match h.provenance {
            gir::geometry::hyperplane::Provenance::StarNonResult { record_id, .. } => {
                Some(record_id)
            }
            _ => None,
        })
        .collect();
    Some((ids, red.vertices))
}

/// A facet id appearing on only one side is tolerated iff every one of
/// its half-spaces grazes the other polytope's boundary.
fn facet_is_tie(region: &GirRegion, id: u64, other_vertices: &[PointD]) -> bool {
    region
        .halfspaces
        .iter()
        .filter(|h| {
            matches!(
                h.provenance,
                gir::geometry::hyperplane::Provenance::StarNonResult { record_id, .. }
                    if record_id == id
            )
        })
        .all(|h| {
            other_vertices
                .iter()
                .map(|v| h.slack(v).abs())
                .fold(f64::INFINITY, f64::min)
                < 1e-6
        })
}

#[allow(clippy::too_many_arguments)]
fn check_star_regions_equivalent(
    m: Method,
    s: usize,
    live: &[Record],
    result_ids: &HashSet<u64>,
    scoring: &ScoringFunction,
    oracle: &GirRegion,
    sharded: &GirRegion,
    d: usize,
    probe_seed: &mut u64,
) {
    // Sampled point membership, with the GIR* law as a second oracle.
    for _ in 0..25 {
        let wp = PointD::from(
            (0..d)
                .map(|_| {
                    *probe_seed ^= *probe_seed << 13;
                    *probe_seed ^= *probe_seed >> 7;
                    *probe_seed ^= *probe_seed << 17;
                    (*probe_seed >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect::<Vec<f64>>(),
        );
        let a = oracle.contains(&wp);
        let b = sharded.contains(&wp);
        let margin = |r: &GirRegion| {
            r.halfspaces
                .iter()
                .map(|h| h.slack(&wp))
                .fold(f64::INFINITY, |acc, v| acc.min(v.abs()))
        };
        if a != b {
            prop_assert!(
                margin(oracle).min(margin(sharded)) < 1e-6,
                "{:?} S={}: sharded GIR* ≠ oracle at {:?}",
                m,
                s,
                wp
            );
        }
        let law = naive_gir_star_contains(live, scoring, result_ids, &wp);
        if b != law {
            prop_assert!(
                margin(sharded) < 1e-6,
                "{:?} S={}: GIR* law violated at {:?} (region {}, law {})",
                m,
                s,
                wp,
                b,
                law
            );
        }
    }

    // Reduced facet set: the same non-redundant star boundary.
    if let (Some((oracle_ids, oracle_verts)), Some((sharded_ids, sharded_verts))) =
        (reduced_star_facets(oracle), reduced_star_facets(sharded))
    {
        for id in oracle_ids.symmetric_difference(&sharded_ids) {
            let (region, other_verts) = if oracle_ids.contains(id) {
                (oracle, &sharded_verts)
            } else {
                (sharded, &oracle_verts)
            };
            prop_assert!(
                facet_is_tie(region, *id, other_verts),
                "{:?} S={}: star facet contributor {} on one side only \
                 (oracle {:?} vs sharded {:?})",
                m,
                s,
                id,
                oracle_ids,
                sharded_ids
            );
        }
    }
}

fn check_star_sharded_equivalence(rows: &[Vec<f64>], w: Vec<f64>, all_ops: &[Op], k: usize) {
    let d = w.len();
    let mut live: Vec<Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Record::new(i as u64, r.clone()))
        .collect();
    let mut oracle_tree = build_tree(&live);
    let mut sharded: Vec<(usize, ShardedDataset)> = SHARDINGS
        .iter()
        .map(|&(s, placement)| (s, ShardedDataset::build(d, &live, s, placement).unwrap()))
        .collect();
    let scoring = ScoringFunction::linear(d);
    let q = QueryVector::new(w);
    let mut probe_seed = 0x57A7u64 | 1;
    let mut next_id = 9_000_000u64;

    // Initial equivalence, then after every chunk of the interleaving.
    let mut chunks: Vec<&[Op]> = vec![&[]];
    chunks.extend(all_ops.chunks(3));
    for chunk in chunks {
        for (op, attrs, sel) in chunk {
            if *op < 6 || live.len() <= k + 8 {
                let rec = Record::new(next_id, attrs.clone());
                next_id += 1;
                oracle_tree.insert(rec.clone()).unwrap();
                for (_, data) in &mut sharded {
                    data.insert(rec.clone()).unwrap();
                }
                live.push(rec);
            } else {
                let idx = (*sel % live.len() as u64) as usize;
                let victim = live.swap_remove(idx);
                assert!(oracle_tree.delete(victim.id, &victim.attrs).unwrap());
                for (_, data) in &mut sharded {
                    assert!(data.delete(victim.id, &victim.attrs).unwrap());
                }
            }
        }

        let engine = GirEngine::new(&oracle_tree);
        for m in METHODS {
            let oracle = engine.gir_star(&q, k, m).unwrap();
            let result_ids: HashSet<u64> = oracle.result.ids().into_iter().collect();
            for (s, data) in &sharded {
                let got = data.gir_star(&scoring, &q, k, m).unwrap();
                prop_assert_eq!(
                    got.result.ids(),
                    oracle.result.ids(),
                    "{:?} S={}: merged top-k differs from single-tree BRS",
                    m,
                    s
                );
                check_star_regions_equivalent(
                    m,
                    *s,
                    &live,
                    &result_ids,
                    &scoring,
                    &oracle.region,
                    &got.region,
                    d,
                    &mut probe_seed,
                );
            }
        }
    }

    // Occupancy sanity: every sharding still holds the full dataset.
    for (s, data) in &sharded {
        prop_assert_eq!(data.len(), live.len() as u64, "S={}: lost records", s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 2-d: rotating stars degenerate to 2-facet fans; cheap reductions.
    #[test]
    fn star_sharded_matches_oracle_2d(
        rows in dataset(2, 45),
        w in proptest::collection::vec(0.05f64..1.0, 2),
        all_ops in ops(2),
        k in 1usize..5,
    ) {
        check_star_sharded_equivalence(&rows, w, &all_ops, k);
    }

    /// 3-d: concurrent incident-facet stars plus hull-of-skyline reuse.
    #[test]
    fn star_sharded_matches_oracle_3d(
        rows in dataset(3, 55),
        w in proptest::collection::vec(0.05f64..1.0, 3),
        all_ops in ops(3),
        k in 1usize..6,
    ) {
        check_star_sharded_equivalence(&rows, w, &all_ops, k);
    }

    /// 4-d: larger skylines, degenerate hulls more likely.
    #[test]
    fn star_sharded_matches_oracle_4d(
        rows in dataset(4, 50),
        w in proptest::collection::vec(0.05f64..1.0, 4),
        all_ops in ops(4),
        k in 1usize..4,
    ) {
        check_star_sharded_equivalence(&rows, w, &all_ops, k);
    }

    /// 5-d: the dimensionality ceiling of the paper's experiments.
    #[test]
    fn star_sharded_matches_oracle_5d(
        rows in dataset(5, 40),
        w in proptest::collection::vec(0.05f64..1.0, 5),
        all_ops in ops(5),
        k in 1usize..4,
    ) {
        check_star_sharded_equivalence(&rows, w, &all_ops, k);
    }
}
