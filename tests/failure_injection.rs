//! Failure injection: storage errors must propagate as `Err`, never
//! panic, and never corrupt previously returned results.

use gir::core::{GirEngine, GirError, Method};
use gir::prelude::*;
use gir::storage::{IoStatsSnapshot, PageBuf, PageId, StorageError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A page store that starts failing reads after a budget is exhausted.
struct FailingStore {
    inner: MemPageStore,
    reads_allowed: AtomicU64,
}

impl FailingStore {
    fn new(reads_allowed: u64) -> Self {
        FailingStore {
            inner: MemPageStore::new(PAGE_SIZE),
            reads_allowed: AtomicU64::new(reads_allowed),
        }
    }

    fn disarm(&self) {
        self.reads_allowed.store(u64::MAX, Ordering::Relaxed);
    }

    fn arm(&self, budget: u64) {
        self.reads_allowed.store(budget, Ordering::Relaxed);
    }
}

impl PageStore for FailingStore {
    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn read_page(&self, id: PageId) -> Result<bytes::Bytes, StorageError> {
        // u64::MAX = disarmed; otherwise a countdown to failure.
        let left = self.reads_allowed.load(Ordering::Relaxed);
        if left != u64::MAX {
            if left == 0 {
                return Err(StorageError::Io(std::io::Error::other(
                    "injected read failure",
                )));
            }
            self.reads_allowed.store(left - 1, Ordering::Relaxed);
        }
        self.inner.read_page(id)
    }

    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError> {
        self.inner.write_page(id, page)
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
}

fn setup(reads_allowed: u64) -> (Arc<FailingStore>, RTree) {
    let failing = Arc::new(FailingStore::new(u64::MAX));
    failing.disarm();
    let data = gir::datagen::synthetic(Distribution::Independent, 5000, 3, 0xFA11);
    let store: Arc<dyn PageStore> = Arc::clone(&failing) as Arc<dyn PageStore>;
    let tree = RTree::bulk_load(store, &data).unwrap();
    failing.arm(reads_allowed);
    (failing, tree)
}

#[test]
fn gir_surfaces_read_errors_for_all_methods() {
    for method in [
        Method::SkylinePruning,
        Method::ConvexHullPruning,
        Method::FacetPruning,
        Method::FullScan,
    ] {
        // Measure the healthy read count, then fail strictly inside it.
        let (store, tree) = setup(u64::MAX);
        store.disarm();
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(vec![0.5, 0.6, 0.7]);
        store.reset_stats();
        engine.gir(&q, 10, method).unwrap();
        let healthy = store.stats().reads;
        assert!(healthy >= 2, "uninteresting workload for {method:?}");

        for budget in [0, 1, healthy / 2, healthy - 1] {
            store.arm(budget);
            match engine.gir(&q, 10, method) {
                Err(GirError::Tree(_)) => {}
                Ok(_) => panic!("{method:?} succeeded with a {budget}-read budget"),
                Err(other) => panic!("{method:?}: unexpected error kind {other}"),
            }
            store.disarm();
        }
    }
}

#[test]
fn recovery_after_failure_window() {
    let (store, tree) = setup(1);
    let engine = GirEngine::new(&tree);
    let q = QueryVector::new(vec![0.5, 0.6, 0.7]);
    assert!(engine.gir(&q, 10, Method::FacetPruning).is_err());
    // The store heals; the same engine object keeps working.
    store.disarm();
    let out = engine.gir(&q, 10, Method::FacetPruning).unwrap();
    assert_eq!(out.result.len(), 10);
    assert!(out.region.contains(&q.weights));
}

#[test]
fn window_query_and_scan_propagate_errors() {
    let (_store, tree) = setup(1);
    assert!(tree.scan_all().is_err());
}

// ---------------------------------------------------------------------
// PruneIndex error paths through the serving layer (PR 3 surface): a
// storage fault during the shared index's lazy build or its incremental
// maintenance must leave cache + index reconciled — the server keeps
// answering (no panic, no poisoned batch) and no stale hit is ever
// served once the store heals.
// ---------------------------------------------------------------------

use gir::query::naive_topk;
use gir::serve::TopKRequest;

fn serve_setup(n: usize) -> (Arc<FailingStore>, Vec<Record>, GirServer) {
    let failing = Arc::new(FailingStore::new(u64::MAX));
    failing.disarm();
    let data = gir::datagen::synthetic(Distribution::Independent, n, 3, 0xFA12);
    let store: Arc<dyn PageStore> = Arc::clone(&failing) as Arc<dyn PageStore>;
    let tree = RTree::bulk_load(store, &data).unwrap();
    let server = GirServer::new(
        tree,
        ScoringFunction::linear(3),
        ServerConfig {
            threads: 1,
            use_prune_index: true,
            ..ServerConfig::default()
        },
    );
    (failing, data, server)
}

fn jittered_requests(count: usize, k: usize) -> Vec<TopKRequest> {
    (0..count)
        .map(|i| {
            let j = 0.001 * (i % 7) as f64;
            TopKRequest::new(vec![0.6 + j, 0.5 - j, 0.55], k)
        })
        .collect()
}

#[test]
fn index_build_failure_mid_miss_keeps_serving_without_stale_hits() {
    let (store, data, server) = serve_setup(1500);
    let reqs = jittered_requests(24, 8);

    // Arm before the first miss: the prune index's lazy skyline build
    // reads pages and fails partway. The batch must complete — failed
    // requests flagged, none served a wrong answer, nothing admitted.
    store.arm(1);
    let batch = server.run_batch(&reqs);
    assert_eq!(batch.responses.len(), reqs.len());
    assert!(
        batch.responses.iter().any(|r| r.failed),
        "injected build failure never surfaced"
    );
    for resp in &batch.responses {
        assert!(
            resp.failed || !resp.ids.is_empty(),
            "non-failed response with no answer"
        );
    }
    assert_eq!(
        server.cache_stats().entries,
        0,
        "failed misses must not admit cache entries"
    );
    assert_eq!(server.prune_stats().builds, 0, "half-built index survived");

    // The store heals: the same server recovers — the index rebuilds
    // lazily and every response (including cache hits) is fresh.
    store.disarm();
    let batch = server.run_batch(&reqs);
    for (req, resp) in reqs.iter().zip(&batch.responses) {
        assert!(!resp.failed, "failure persisted after the store healed");
        let truth = naive_topk(&data, server.scoring(), &req.weights, req.k);
        assert_eq!(resp.ids, truth.ids(), "stale response after recovery");
    }
    assert!(server.prune_stats().builds >= 1);
    assert!(server.cache_stats().hits > 0, "cache never warmed up");
}

#[test]
fn maintenance_error_during_apply_batch_leaves_cache_and_index_reconciled() {
    use gir::serve::Update;

    // A deletion of a *skyline member* forces the index's localized
    // repair descent (tree reads). Find the budget at which the tree
    // mutation itself succeeds but the descent fails: the tree has
    // changed, the index must have invalidated itself, and the cache
    // must already be reconciled with the applied delete when the
    // error propagates.
    let victim = {
        let (_, data, _) = serve_setup(1500);
        gir::query::naive_skyline(&data)
            .into_iter()
            .next()
            .expect("non-empty skyline")
    };

    let mut exercised = false;
    for budget in 0..64u64 {
        let (store, data, server) = serve_setup(1500);
        let reqs = jittered_requests(16, 6);
        // Warm: cache entries admitted, index + mirror built.
        let warm = server.run_batch(&reqs);
        assert!(warm.responses.iter().all(|r| !r.failed));
        assert!(server.cache_stats().entries > 0);

        store.arm(budget);
        let outcome = server.apply_updates(&[Update::Delete {
            id: victim.id,
            attrs: victim.attrs.clone(),
        }]);
        store.disarm();

        let deleted = server.num_records() == data.len() as u64 - 1;
        if outcome.is_ok() {
            assert!(deleted, "Ok(_) but the tree still holds the victim");
            break; // budget large enough: nothing left to inject
        }
        if !deleted {
            continue; // the tree delete itself failed: prefix is empty
        }
        // The interesting case: tree mutated, index maintenance failed.
        exercised = true;

        // Serve keeps answering, and every response — hit or miss — is
        // fresh against the mutated dataset (the index rebuilds from
        // scratch; entries naming the victim were evicted or repaired
        // by the already-run cache reconciliation).
        let mirror: Vec<Record> = data.iter().filter(|r| r.id != victim.id).cloned().collect();
        let batch = server.run_batch(&reqs);
        let mut hits = 0;
        for (req, resp) in reqs.iter().zip(&batch.responses) {
            assert!(!resp.failed, "failure persisted after the store healed");
            let truth = naive_topk(&mirror, server.scoring(), &req.weights, req.k);
            assert_eq!(
                resp.ids,
                truth.ids(),
                "stale response after maintenance error (budget {budget})"
            );
            hits += usize::from(resp.from_cache);
        }
        let _ = hits; // hit or miss, freshness is what matters
    }
    assert!(
        exercised,
        "no budget hit the tree-mutated-but-index-failed window"
    );
}
