//! Failure injection: storage errors must propagate as `Err`, never
//! panic, and never corrupt previously returned results.

use gir::core::{GirEngine, GirError, Method};
use gir::prelude::*;
use gir::storage::{IoStatsSnapshot, PageBuf, PageId, StorageError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A page store that starts failing reads after a budget is exhausted.
struct FailingStore {
    inner: MemPageStore,
    reads_allowed: AtomicU64,
}

impl FailingStore {
    fn new(reads_allowed: u64) -> Self {
        FailingStore {
            inner: MemPageStore::new(PAGE_SIZE),
            reads_allowed: AtomicU64::new(reads_allowed),
        }
    }

    fn disarm(&self) {
        self.reads_allowed.store(u64::MAX, Ordering::Relaxed);
    }

    fn arm(&self, budget: u64) {
        self.reads_allowed.store(budget, Ordering::Relaxed);
    }
}

impl PageStore for FailingStore {
    fn allocate(&self) -> PageId {
        self.inner.allocate()
    }

    fn read_page(&self, id: PageId) -> Result<bytes::Bytes, StorageError> {
        // u64::MAX = disarmed; otherwise a countdown to failure.
        let left = self.reads_allowed.load(Ordering::Relaxed);
        if left != u64::MAX {
            if left == 0 {
                return Err(StorageError::Io(std::io::Error::other(
                    "injected read failure",
                )));
            }
            self.reads_allowed.store(left - 1, Ordering::Relaxed);
        }
        self.inner.read_page(id)
    }

    fn write_page(&self, id: PageId, page: PageBuf) -> Result<(), StorageError> {
        self.inner.write_page(id, page)
    }

    fn stats(&self) -> IoStatsSnapshot {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
}

fn setup(reads_allowed: u64) -> (Arc<FailingStore>, RTree) {
    let failing = Arc::new(FailingStore::new(u64::MAX));
    failing.disarm();
    let data = gir::datagen::synthetic(Distribution::Independent, 5000, 3, 0xFA11);
    let store: Arc<dyn PageStore> = Arc::clone(&failing) as Arc<dyn PageStore>;
    let tree = RTree::bulk_load(store, &data).unwrap();
    failing.arm(reads_allowed);
    (failing, tree)
}

#[test]
fn gir_surfaces_read_errors_for_all_methods() {
    for method in [
        Method::SkylinePruning,
        Method::ConvexHullPruning,
        Method::FacetPruning,
        Method::FullScan,
    ] {
        // Measure the healthy read count, then fail strictly inside it.
        let (store, tree) = setup(u64::MAX);
        store.disarm();
        let engine = GirEngine::new(&tree);
        let q = QueryVector::new(vec![0.5, 0.6, 0.7]);
        store.reset_stats();
        engine.gir(&q, 10, method).unwrap();
        let healthy = store.stats().reads;
        assert!(healthy >= 2, "uninteresting workload for {method:?}");

        for budget in [0, 1, healthy / 2, healthy - 1] {
            store.arm(budget);
            match engine.gir(&q, 10, method) {
                Err(GirError::Tree(_)) => {}
                Ok(_) => panic!("{method:?} succeeded with a {budget}-read budget"),
                Err(other) => panic!("{method:?}: unexpected error kind {other}"),
            }
            store.disarm();
        }
    }
}

#[test]
fn recovery_after_failure_window() {
    let (store, tree) = setup(1);
    let engine = GirEngine::new(&tree);
    let q = QueryVector::new(vec![0.5, 0.6, 0.7]);
    assert!(engine.gir(&q, 10, Method::FacetPruning).is_err());
    // The store heals; the same engine object keeps working.
    store.disarm();
    let out = engine.gir(&q, 10, Method::FacetPruning).unwrap();
    assert_eq!(out.result.len(), 10);
    assert!(out.region.contains(&q.weights));
}

#[test]
fn window_query_and_scan_propagate_errors() {
    let (_store, tree) = setup(1);
    assert!(tree.scan_all().is_err());
}
