//! Cross-crate integration tests: datasets → R*-tree → BRS → GIR,
//! exercised through the public facade exactly as a downstream user
//! would.

use gir::core::{CacheKey, GirCache, Method};
use gir::datagen::{hotel_like, house_like, random_queries, synthetic, Distribution};
use gir::prelude::*;
use gir::query::{naive_topk, ScoringFunction};
use gir::storage::FilePageStore;
use gir_geometry::vector::PointD;
use std::sync::Arc;

const METHODS: [Method; 4] = [
    Method::SkylinePruning,
    Method::ConvexHullPruning,
    Method::FacetPruning,
    Method::FullScan,
];

fn build(dist: Distribution, n: usize, d: usize, seed: u64) -> (Vec<gir::rtree::Record>, RTree) {
    let data = synthetic(dist, n, d, seed);
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    (data, tree)
}

/// Definition 1 as an executable law: w' ∈ GIR ⟺ the naive top-k at w'
/// equals the original ranked result.
fn assert_gir_law(
    data: &[gir::rtree::Record],
    tree: &RTree,
    w: Vec<f64>,
    k: usize,
    probes: &[PointD],
) {
    let d = tree.dim();
    let engine = GirEngine::new(tree);
    let q = QueryVector::new(w);
    let f = ScoringFunction::linear(d);
    let outs: Vec<_> = METHODS
        .iter()
        .map(|&m| engine.gir(&q, k, m).unwrap())
        .collect();
    let base = outs[0].result.ids();
    for o in &outs {
        assert_eq!(o.result.ids(), base, "methods disagree on the top-k");
        assert!(o.region.contains(&q.weights));
    }
    for wp in probes {
        let expect = naive_topk(data, &f, wp, k).ids() == base;
        for (m, o) in METHODS.iter().zip(outs.iter()) {
            let got = o.region.contains(wp);
            if got != expect {
                let margin: f64 = o
                    .region
                    .halfspaces
                    .iter()
                    .map(|h| h.slack(wp))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    margin.abs() < 1e-6,
                    "{m:?}: GIR law violated at {wp:?} (margin {margin})"
                );
            }
        }
    }
}

#[test]
fn gir_law_on_all_distributions() {
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::Anticorrelated,
    ] {
        for d in [2usize, 3, 4] {
            let (data, tree) = build(dist, 1200, d, 0xE2E);
            let probes = random_queries(60, d, 0.0, 0x9);
            assert_gir_law(&data, &tree, vec![0.5; d], 12, &probes);
        }
    }
}

#[test]
fn gir_law_on_real_like_datasets() {
    for (name, data) in [
        ("HOTEL", hotel_like(3000, 1)),
        ("HOUSE", house_like(3000, 1)),
    ] {
        let d = data[0].dim();
        let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
        let tree = RTree::bulk_load(store, &data).unwrap();
        let probes = random_queries(40, d, 0.0, 0x8);
        // Real-like data has near-ties; keep the probe margin rule.
        let _ = name;
        assert_gir_law(&data, &tree, vec![0.6; d], 10, &probes);
    }
}

#[test]
fn gir_on_file_backed_store() {
    // The default disk-resident scenario: same answers, real file I/O.
    let d = 3;
    let data = synthetic(Distribution::Independent, 3000, d, 77);
    let dir = std::env::temp_dir().join("gir-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("pages-{}.db", std::process::id()));
    let store: Arc<dyn PageStore> = Arc::new(FilePageStore::create(&path).unwrap());
    let tree = RTree::bulk_load(Arc::clone(&store), &data).unwrap();

    let mem_store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let mem_tree = RTree::bulk_load(mem_store, &data).unwrap();

    let q = QueryVector::new(vec![0.7, 0.6, 0.5]);
    let engine = GirEngine::new(&tree);
    let mem_engine = GirEngine::new(&mem_tree);
    for m in METHODS {
        let a = engine.gir(&q, 10, m).unwrap();
        let b = mem_engine.gir(&q, 10, m).unwrap();
        assert_eq!(a.result.ids(), b.result.ids());
        assert_eq!(a.stats.candidates, b.stats.candidates, "{m:?}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn nonlinear_scoring_end_to_end() {
    let data = hotel_like(4000, 3);
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    for scoring in [ScoringFunction::polynomial4(), ScoringFunction::mixed4()] {
        let engine = GirEngine::with_scoring(&tree, scoring.clone());
        let q = QueryVector::new(vec![0.5, 0.6, 0.4, 0.7]);
        let out = engine.gir(&q, 8, Method::SkylinePruning).unwrap();
        assert_eq!(
            out.result.ids(),
            naive_topk(&data, &scoring, &q.weights, 8).ids()
        );
        assert!(out.region.contains(&q.weights));
        // Membership still tracks the ranking under the non-linear score.
        for wp in random_queries(40, 4, 0.0, 5) {
            let expect = naive_topk(&data, &scoring, &wp, 8).ids() == out.result.ids();
            let got = out.region.contains(&wp);
            if expect != got {
                let margin: f64 = out
                    .region
                    .halfspaces
                    .iter()
                    .map(|h| h.slack(&wp))
                    .fold(f64::INFINITY, f64::min);
                assert!(margin.abs() < 1e-6, "non-linear GIR law violated at {wp:?}");
            }
        }
    }
}

#[test]
fn cache_serves_provably_fresh_results() {
    let d = 3;
    let (data, tree) = build(Distribution::Independent, 10_000, d, 0xCAC);
    let engine = GirEngine::new(&tree);
    let f = ScoringFunction::linear(d);
    let mut cache = GirCache::new(8);
    let anchor = PointD::new(vec![0.6, 0.5, 0.7]);
    let out = engine
        .gir(
            &QueryVector::new(anchor.coords().to_vec()),
            10,
            Method::FacetPruning,
        )
        .unwrap();
    cache.admit(
        &CacheKey::new(&anchor, 10, &f),
        out.region.clone(),
        out.result.clone(),
    );

    let mut hits = 0;
    for i in 0..50 {
        let jitter = 0.001 * (i as f64 % 7.0 - 3.0);
        let w = PointD::new(vec![0.6 + jitter, 0.5 - jitter, 0.7 + jitter / 2.0]);
        if let Some(records) = cache.get(&CacheKey::new(&w, 10, &f)) {
            hits += 1;
            let fresh = naive_topk(&data, &f, &w, 10);
            assert_eq!(
                records.iter().map(|r| r.id).collect::<Vec<_>>(),
                fresh.ids(),
                "stale cache hit at {w:?}"
            );
        }
    }
    assert!(
        hits > 10,
        "expected many hits under small jitter, got {hits}"
    );
}

#[test]
fn volume_agrees_between_exact_and_monte_carlo() {
    use gir_geometry::volume::{monte_carlo_volume, VolumeOptions};
    let (_, tree) = build(Distribution::Independent, 5000, 3, 0x5173);
    let engine = GirEngine::new(&tree);
    let q = QueryVector::new(vec![0.5, 0.6, 0.7]);
    let out = engine.gir(&q, 10, Method::FacetPruning).unwrap();
    let opts = VolumeOptions::default();
    let exact = out.region.volume(&opts);
    let mc = monte_carlo_volume(&out.region.halfspaces, 3, &opts);
    if exact.volume > 1e-8 {
        let rel = (exact.volume - mc.volume).abs() / exact.volume;
        assert!(rel < 0.15, "exact {} vs MC {}", exact.volume, mc.volume);
    }
}

#[test]
fn stats_track_io_by_phase() {
    let (_, tree) = build(Distribution::Independent, 30_000, 3, 0x10);
    let engine = GirEngine::new(&tree);
    let q = QueryVector::new(vec![0.5, 0.5, 0.5]);
    let sp = engine.gir(&q, 20, Method::SkylinePruning).unwrap();
    let fp = engine.gir(&q, 20, Method::FacetPruning).unwrap();
    let scan = engine.gir(&q, 20, Method::FullScan).unwrap();
    assert!(sp.stats.topk_pages > 0);
    assert!(fp.stats.gir_pages < sp.stats.gir_pages);
    assert!(sp.stats.gir_pages < scan.stats.gir_pages);
    // The cost model translates pages to milliseconds.
    let model = gir::storage::CostModel::disk_2014();
    let snap = gir::storage::IoStatsSnapshot {
        reads: fp.stats.gir_pages,
        writes: 0,
    };
    assert!(model.io_ms(&snap) >= 0.0);
}
