//! Property tests for cache maintenance soundness
//! (`gir::core::maintenance`): after `apply_insertion` returns `Shrunk`
//! (or `Unaffected`), every weight vector still inside the region must
//! preserve the cached top-k on the *updated* dataset — the invariant
//! the serving layer's freshness guarantee rests on.

use gir::core::maintenance::{apply_insertion, UpdateImpact};
use gir::core::Method;
use gir::prelude::*;
use gir::query::naive_topk;
use proptest::prelude::*;
use std::sync::Arc;

fn build_tree(rows: &[Vec<f64>]) -> (Vec<Record>, RTree) {
    let data: Vec<Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Record::new(i as u64, r.clone()))
        .collect();
    let store: Arc<dyn PageStore> = Arc::new(MemPageStore::new(PAGE_SIZE));
    let tree = RTree::bulk_load(store, &data).unwrap();
    (data, tree)
}

fn dataset(d: usize, n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, d), n..n + 30)
}

fn weights(d: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..1.0, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serving-layer invariant in 3-d: insert a newcomer, shrink the
    /// region, and every strictly interior weight vector must still get
    /// the cached ranked result from a full recomputation.
    #[test]
    fn shrunk_region_preserves_topk_3d(
        rows in dataset(3, 60),
        w in weights(3),
        newcomer in proptest::collection::vec(0.0f64..1.0, 3),
        probes in proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, 3), 40),
        k in 1usize..6,
    ) {
        let (mut data, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let scoring = ScoringFunction::linear(3);
        let q = QueryVector::new(w);
        let out = engine.gir(&q, k, Method::FacetPruning).unwrap();
        let base = out.result.ids();
        let kth = out.result.kth().clone();
        let mut region = out.region.clone();

        let rec = Record::new(7_000_000, newcomer);
        let impact = apply_insertion(&mut region, &kth, &rec, &scoring);
        data.push(rec);

        match impact {
            UpdateImpact::Unaffected | UpdateImpact::Shrunk => {
                for p in probes {
                    let wp = PointD::from(p);
                    if !region.contains(&wp) {
                        continue;
                    }
                    // Skip boundary-epsilon probes, as the exact tests do.
                    let margin: f64 = region
                        .halfspaces
                        .iter()
                        .map(|h| h.slack(&wp))
                        .fold(f64::INFINITY, f64::min);
                    if margin < 1e-6 {
                        continue;
                    }
                    prop_assert_eq!(
                        naive_topk(&data, &scoring, &wp, k).ids(),
                        base.clone(),
                        "{:?}: stale result inside region at {:?} (margin {})",
                        impact, wp, margin
                    );
                }
                // Shrinking must never grow the region.
                if impact == UpdateImpact::Shrunk {
                    prop_assert!(region.num_halfspaces() > out.region.num_halfspaces());
                }
            }
            // apply_insertion never asks for a facet repair.
            UpdateImpact::NeedsRepair => prop_assert!(false, "insertion classified NeedsRepair"),
            UpdateImpact::Invalidated => {
                // The newcomer must genuinely beat the old k-th at the
                // original query (allowing LP epsilon).
                let s_new = scoring.score(&q.weights, &data.last().unwrap().attrs);
                let s_kth = scoring.score(&q.weights, &kth.attrs);
                prop_assert!(
                    s_new > s_kth - 1e-9,
                    "invalidated but newcomer loses at q: {} vs {}", s_new, s_kth
                );
            }
        }
    }

    /// Same invariant in 2-d with more probes (cheap), plus the
    /// subset property: the shrunk region is contained in the original.
    #[test]
    fn shrunk_region_is_subset_2d(
        rows in dataset(2, 50),
        w in weights(2),
        newcomer in proptest::collection::vec(0.0f64..1.0, 2),
        probes in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 2), 60),
        k in 1usize..5,
    ) {
        let (mut data, tree) = build_tree(&rows);
        let engine = GirEngine::new(&tree);
        let scoring = ScoringFunction::linear(2);
        let q = QueryVector::new(w);
        let out = engine.gir(&q, k, Method::FacetPruning).unwrap();
        let kth = out.result.kth().clone();
        let mut region = out.region.clone();
        let rec = Record::new(7_000_001, newcomer);
        let impact = apply_insertion(&mut region, &kth, &rec, &scoring);
        data.push(rec);

        if impact != UpdateImpact::Invalidated {
            for p in probes {
                let wp = PointD::from(p);
                if region.contains(&wp) {
                    prop_assert!(
                        out.region.contains(&wp),
                        "shrink grew the region at {:?}", wp
                    );
                    let margin: f64 = region
                        .halfspaces
                        .iter()
                        .map(|h| h.slack(&wp))
                        .fold(f64::INFINITY, f64::min);
                    if margin > 1e-6 {
                        prop_assert_eq!(
                            naive_topk(&data, &scoring, &wp, k).ids(),
                            out.result.ids(),
                            "stale result inside shrunk region at {:?}", wp
                        );
                    }
                }
            }
        }
    }
}
